/**
 * @file
 * btbsim-stats — inspect and compare btbsim result JSON (schema v1/v2,
 * see obs/export.h; loading goes through obs/result_doc.h so every
 * command accepts both versions).
 *
 *   btbsim-stats show <file.json>
 *       Validate the file and print per-config aggregates, with a
 *       sparkline of the interval IPC time series when present.
 *
 *   btbsim-stats diff <old.json> <new.json> [--threshold FRAC]
 *       Match runs by (config, workload), compare per-config geomean IPC
 *       and exit 1 when any config regresses by more than FRAC (default
 *       0.02 = 2%). Used by CI as a regression gate.
 *
 *   btbsim-stats prof <file.json>
 *       Render the host span profile as an indented tree: where the
 *       simulator itself spent its time (warmup vs measure vs export,
 *       experiment-engine stages), with host perf-counter columns
 *       (simulator IPC, branch MPKI) when the producing run had
 *       perf_event_open access.
 *
 *   btbsim-stats prof --compare <a.json> <b.json>
 *       Side-by-side wall-time comparison of two profiles by span path.
 *
 *   btbsim-stats env [--markdown]
 *       Dump every BTBSIM_* knob the simulator honours (common/env.h
 *       facade): name, default, current value, description. --markdown
 *       emits the README env-var table.
 *
 * Exit codes: 0 ok, 1 regression found, 2 usage or parse error.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/env.h"
#include "obs/result_doc.h"

namespace {

using btbsim::obs::DocRun;
using btbsim::obs::ResultDoc;
using btbsim::obs::SpanAgg;
using btbsim::obs::SpanProfile;

double
geomean(const std::vector<double> &v)
{
    double log_sum = 0.0;
    std::size_t n = 0;
    for (double x : v)
        if (x > 0) {
            log_sum += std::log(x);
            ++n;
        }
    return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

std::map<std::string, std::vector<double>>
ipcByConfig(const ResultDoc &doc)
{
    std::map<std::string, std::vector<double>> out;
    for (const DocRun &r : doc.runs)
        out[r.config].push_back(r.ipc);
    return out;
}

int
cmdShow(const std::string &path)
{
    const ResultDoc doc = btbsim::obs::loadResultDoc(path);
    std::printf("%s: schema v%d, bench \"%s\", %zu runs\n", path.c_str(),
                doc.schema_version, doc.bench.c_str(), doc.runs.size());
    std::printf("%-32s %6s %12s %9s  %s\n", "config", "runs", "geomean IPC",
                "samples", "ipc over time");
    std::printf("%s\n", std::string(96, '-').c_str());

    // Per-config sample tally and interval-IPC series (runs in file
    // order, concatenated — a coarse shape, not a per-run plot).
    std::map<std::string, std::size_t> samples;
    std::map<std::string, std::vector<double>> series;
    for (const DocRun &r : doc.runs) {
        samples[r.config] += r.samples.size();
        for (const btbsim::obs::IntervalSample &p : r.samples)
            series[r.config].push_back(p.ipc);
    }
    for (const auto &[cfg, ipcs] : ipcByConfig(doc))
        std::printf("%-32s %6zu %12.3f %9zu  %s\n", cfg.c_str(),
                    ipcs.size(), geomean(ipcs), samples[cfg],
                    btbsim::obs::sparkline(series[cfg]).c_str());
    return 0;
}

int
cmdDiff(const std::string &old_path, const std::string &new_path,
        double threshold)
{
    const ResultDoc a = btbsim::obs::loadResultDoc(old_path);
    const ResultDoc b = btbsim::obs::loadResultDoc(new_path);

    std::map<std::pair<std::string, std::string>, double> old_ipc;
    for (const DocRun &r : a.runs)
        old_ipc[{r.config, r.workload}] = r.ipc;

    // Per-config geomean over the runs present in BOTH files.
    std::map<std::string, std::vector<double>> old_by_cfg, new_by_cfg;
    std::size_t matched = 0;
    for (const DocRun &r : b.runs) {
        auto it = old_ipc.find({r.config, r.workload});
        if (it == old_ipc.end())
            continue;
        ++matched;
        old_by_cfg[r.config].push_back(it->second);
        new_by_cfg[r.config].push_back(r.ipc);
    }

    if (matched == 0) {
        std::fprintf(stderr,
                     "no (config, workload) pairs in common between %s "
                     "and %s\n",
                     old_path.c_str(), new_path.c_str());
        return 2;
    }

    std::printf("%zu matched runs; regression threshold %.1f%%\n\n", matched,
                threshold * 100.0);
    std::printf("%-32s %10s %10s %9s\n", "config", "old IPC", "new IPC",
                "delta");
    std::printf("%s\n", std::string(64, '-').c_str());

    bool regression = false;
    for (const auto &[cfg, old_v] : old_by_cfg) {
        const double g_old = geomean(old_v);
        const double g_new = geomean(new_by_cfg[cfg]);
        const double delta = g_old > 0 ? (g_new - g_old) / g_old : 0.0;
        const bool bad = delta < -threshold;
        regression = regression || bad;
        std::printf("%-32s %10.3f %10.3f %+8.2f%%%s\n", cfg.c_str(), g_old,
                    g_new, delta * 100.0, bad ? "  <-- REGRESSION" : "");
    }

    if (regression) {
        std::printf("\nIPC regression beyond %.1f%% detected.\n",
                    threshold * 100.0);
        return 1;
    }
    std::printf("\nno IPC regression beyond %.1f%%.\n", threshold * 100.0);
    return 0;
}

// ---- prof ---------------------------------------------------------------

std::uint16_t
pathDepth(const std::string &path)
{
    std::uint16_t d = 0;
    for (char c : path)
        if (c == '/')
            ++d;
    return d;
}

std::string
pathLeaf(const std::string &path)
{
    const std::size_t pos = path.rfind('/');
    return pos == std::string::npos ? path : path.substr(pos + 1);
}

/** Wall time summed over root-level paths — the denominator of "%". */
std::uint64_t
rootWallNs(const SpanProfile &spans)
{
    std::uint64_t total = 0;
    for (const auto &[path, a] : spans)
        if (pathDepth(path) == 0)
            total += a.wall_ns;
    return total;
}

int
cmdProf(const std::string &path)
{
    const ResultDoc doc = btbsim::obs::loadResultDoc(path);
    const SpanProfile spans = doc.mergedSpans();
    const bool have_counters = doc.mergedCountersAvailable();

    std::printf("%s: schema v%d, bench \"%s\", %zu runs\n", path.c_str(),
                doc.schema_version, doc.bench.c_str(), doc.runs.size());
    if (spans.empty()) {
        std::printf("no host span profile in this document%s\n",
                    doc.schema_version < 2
                        ? " (schema v1 predates profiling)"
                        : " (BTBSIM_SPANS=0 when it was produced?)");
        return 0;
    }
    if (doc.has_profile)
        std::printf("profile: %llu spans on %u thread(s), %llu trace "
                    "record(s) dropped\n",
                    static_cast<unsigned long long>(doc.profile.total_spans),
                    doc.profile.threads,
                    static_cast<unsigned long long>(doc.profile.dropped));
    std::printf("host counters: %s\n\n",
                have_counters ? "available (perf_event_open)"
                              : "unavailable — timestamps only");

    std::printf("%-36s %8s %10s %6s %9s", "span", "count", "wall(s)", "%",
                "avg(ms)");
    if (have_counters)
        std::printf(" %6s %8s %6s", "IPC", "brMPKI", "cpu%");
    std::printf("\n%s\n", std::string(have_counters ? 102 : 78, '-').c_str());

    // std::map iterates paths lexicographically, so every span follows
    // its ancestors; indentation by depth renders the tree.
    const double total_ns = static_cast<double>(rootWallNs(spans));
    for (const auto &[span_path, a] : spans) {
        const std::uint16_t depth = pathDepth(span_path);
        const std::string label =
            std::string(2 * depth, ' ') + pathLeaf(span_path);
        const double wall_s = static_cast<double>(a.wall_ns) / 1e9;
        const double pct =
            total_ns > 0
                ? static_cast<double>(a.wall_ns) / total_ns * 100.0
                : 0.0;
        const double avg_ms =
            a.count > 0
                ? static_cast<double>(a.wall_ns) / 1e6 /
                      static_cast<double>(a.count)
                : 0.0;
        std::printf("%-36s %8llu %10.3f %5.1f%% %9.3f", label.c_str(),
                    static_cast<unsigned long long>(a.count), wall_s, pct,
                    avg_ms);
        if (have_counters) {
            const double ipc =
                a.cycles > 0 ? static_cast<double>(a.instructions) /
                                   static_cast<double>(a.cycles)
                             : 0.0;
            const double br_mpki =
                a.instructions > 0
                    ? static_cast<double>(a.branch_misses) /
                          static_cast<double>(a.instructions) * 1000.0
                    : 0.0;
            const double cpu_pct =
                a.wall_ns > 0 ? static_cast<double>(a.task_clock_ns) /
                                    static_cast<double>(a.wall_ns) * 100.0
                              : 0.0;
            std::printf(" %6.2f %8.2f %5.0f%%", ipc, br_mpki, cpu_pct);
        }
        std::printf("\n");
    }
    return 0;
}

int
cmdProfCompare(const std::string &a_path, const std::string &b_path)
{
    const ResultDoc a = btbsim::obs::loadResultDoc(a_path);
    const ResultDoc b = btbsim::obs::loadResultDoc(b_path);
    const SpanProfile sa = a.mergedSpans();
    const SpanProfile sb = b.mergedSpans();

    // Union of paths, lexicographic (tree order).
    std::map<std::string, std::pair<const SpanAgg *, const SpanAgg *>> all;
    for (const auto &[p, agg] : sa)
        all[p].first = &agg;
    for (const auto &[p, agg] : sb)
        all[p].second = &agg;

    if (all.empty()) {
        std::fprintf(stderr, "neither %s nor %s holds a span profile\n",
                     a_path.c_str(), b_path.c_str());
        return 2;
    }

    std::printf("span wall-time comparison: A=%s  B=%s\n\n", a_path.c_str(),
                b_path.c_str());
    std::printf("%-36s %10s %10s %9s\n", "span", "A wall(s)", "B wall(s)",
                "delta");
    std::printf("%s\n", std::string(70, '-').c_str());
    for (const auto &[span_path, pair] : all) {
        const std::string label =
            std::string(2 * pathDepth(span_path), ' ') + pathLeaf(span_path);
        const double wa =
            pair.first ? static_cast<double>(pair.first->wall_ns) / 1e9 : 0.0;
        const double wb =
            pair.second ? static_cast<double>(pair.second->wall_ns) / 1e9
                        : 0.0;
        if (wa > 0 && wb > 0)
            std::printf("%-36s %10.3f %10.3f %+8.1f%%\n", label.c_str(), wa,
                        wb, (wb - wa) / wa * 100.0);
        else
            std::printf("%-36s %10.3f %10.3f %9s\n", label.c_str(), wa, wb,
                        pair.first ? "A only" : "B only");
    }
    return 0;
}

int
cmdEnv(bool markdown)
{
    if (markdown) {
        std::printf("| Variable | Default | Description |\n");
        std::printf("| --- | --- | --- |\n");
        for (const btbsim::env::Knob &k : btbsim::env::knobs())
            std::printf("| `%s` | `%s` | %s |\n", k.name,
                        *k.fallback ? k.fallback : "(unset)", k.description);
        return 0;
    }
    std::printf("%-24s %-16s %-16s %s\n", "variable", "default", "current",
                "description");
    std::printf("%s\n", std::string(100, '-').c_str());
    for (const btbsim::env::Knob &k : btbsim::env::knobs()) {
        const std::string cur = btbsim::env::isSet(k.name)
                                    ? btbsim::env::raw(k.name)
                                    : "(unset)";
        std::printf("%-24s %-16s %-16s %s\n", k.name,
                    *k.fallback ? k.fallback : "(unset)", cur.c_str(),
                    k.description);
    }
    return 0;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: btbsim-stats show <file.json>\n"
        "       btbsim-stats diff <old.json> <new.json> [--threshold F]\n"
        "       btbsim-stats prof <file.json>\n"
        "       btbsim-stats prof --compare <a.json> <b.json>\n"
        "       btbsim-stats env [--markdown]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc >= 3 && std::strcmp(argv[1], "show") == 0)
            return cmdShow(argv[2]);
        if (argc >= 2 && std::strcmp(argv[1], "env") == 0)
            return cmdEnv(argc >= 3 &&
                          std::strcmp(argv[2], "--markdown") == 0);
        if (argc >= 3 && std::strcmp(argv[1], "prof") == 0) {
            if (std::strcmp(argv[2], "--compare") == 0) {
                if (argc < 5) {
                    usage();
                    return 2;
                }
                return cmdProfCompare(argv[3], argv[4]);
            }
            return cmdProf(argv[2]);
        }
        if (argc >= 4 && std::strcmp(argv[1], "diff") == 0) {
            double threshold = 0.02;
            for (int i = 4; i + 1 < argc; ++i)
                if (std::strcmp(argv[i], "--threshold") == 0)
                    threshold = std::atof(argv[i + 1]);
            return cmdDiff(argv[2], argv[3], threshold);
        }
        usage();
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "btbsim-stats: %s\n", e.what());
        return 2;
    }
}
