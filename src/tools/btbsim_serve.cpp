/**
 * @file
 * btbsim-serve — the sweep-service daemon.
 *
 *   btbsim-serve [--socket PATH] [--shards N] [--cache DIR] [--retries N]
 *
 * Listens on a Unix domain socket (default BTBSIM_SERVE_SOCKET or
 * results/btbsim-serve.sock) for newline-delimited JSON requests
 * (src/serve/protocol.h), runs submitted config batches on an
 * in-process shard pool with the shared trace-chunk cache, and streams
 * per-point progress/results back. Completed points are journaled
 * durably and stored in the content-addressed run cache, so a daemon
 * restarted after a crash (even kill -9) resumes resubmitted batches
 * without re-running finished work.
 *
 * Exits when a client sends {"op":"shutdown"}.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "common/env.h"
#include "exp/run_cache.h"
#include "serve/server.h"

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: btbsim-serve [--socket PATH] [--shards N] [--cache DIR]\n"
        "                    [--retries N]\n"
        "defaults: BTBSIM_SERVE_SOCKET (results/btbsim-serve.sock),\n"
        "          BTBSIM_SHARDS (hardware concurrency),\n"
        "          BTBSIM_RUN_CACHE (results/cache), BTBSIM_RETRIES (2)\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace btbsim;

    serve::ServerOptions opt;
    opt.socket_path =
        env::str("BTBSIM_SERVE_SOCKET", "results/btbsim-serve.sock");
    opt.shards = static_cast<unsigned>(env::u64("BTBSIM_SHARDS", 0));
    opt.cache_dir = exp::RunCache::dirFromEnv("results/cache");
    opt.retries = static_cast<unsigned>(env::u64("BTBSIM_RETRIES", 2));

    for (int i = 1; i < argc; ++i) {
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::exit(usage());
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--socket") == 0)
            opt.socket_path = value();
        else if (std::strcmp(argv[i], "--shards") == 0)
            opt.shards = static_cast<unsigned>(std::atoi(value()));
        else if (std::strcmp(argv[i], "--cache") == 0)
            opt.cache_dir = value();
        else if (std::strcmp(argv[i], "--retries") == 0)
            opt.retries = static_cast<unsigned>(std::atoi(value()));
        else
            return usage();
    }

    {
        const std::filesystem::path p(opt.socket_path);
        std::error_code ec;
        if (p.has_parent_path())
            std::filesystem::create_directories(p.parent_path(), ec);
    }

    const std::string cache_desc =
        opt.cache_dir.empty() ? "off" : opt.cache_dir;
    try {
        serve::Server server(std::move(opt));
        server.start();
        std::printf("btbsim-serve: listening on %s (%u shards, cache %s)\n",
                    server.socketPath().c_str(), server.shards(),
                    cache_desc.c_str());
        std::fflush(stdout);
        server.wait();
        std::printf("btbsim-serve: drained after %llu batch(es), exiting\n",
                    static_cast<unsigned long long>(server.batchesDone()));
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "btbsim-serve: %s\n", e.what());
        return 1;
    }
}
