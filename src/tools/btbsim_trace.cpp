/**
 * @file
 * btbsim-trace — record, inspect, convert and verify `.btbt` traces
 * (format documented in traceio/format.h and DESIGN.md).
 *
 *   btbsim-trace record [--out DIR] [--insts N] [--chunk N]
 *                       [--suite N] [WORKLOAD...]
 *       Record named serverSuite() workloads (default: all of them) as
 *       DIR/<name>.btbt. N defaults to BTBSIM_WARMUP + BTBSIM_MEASURE
 *       plus a 64Ki-instruction frontend-slack margin, so a bench run
 *       with the same env knobs replays without wrapping.
 *
 *   btbsim-trace info FILE [--insts N]
 *       Print the header, per-chunk integrity, and the branch-mix
 *       summary of the first N (default 1M) instructions.
 *
 *   btbsim-trace convert IN OUT [--name NAME] [--max N]
 *       Convert a raw ChampSim input_instr trace into OUT (.btbt).
 *
 *   btbsim-trace verify FILE...
 *       Full integrity walk: header, Program image, every chunk CRC
 *       and a complete decode.
 *
 * Exit codes: 0 ok, 1 verification failure, 2 usage or I/O error.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "trace/analyzer.h"
#include "trace/suite.h"
#include "traceio/champsim.h"
#include "traceio/trace_reader.h"
#include "traceio/trace_writer.h"
#include "sim/runner.h"

namespace {

using namespace btbsim;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: btbsim-trace record [--out DIR] [--insts N] [--chunk N]\n"
        "                           [--suite N] [WORKLOAD...]\n"
        "       btbsim-trace info FILE [--insts N]\n"
        "       btbsim-trace convert IN OUT [--name NAME] [--max N]\n"
        "       btbsim-trace verify FILE...\n");
    return 2;
}

/** Parse "--flag VALUE" style options out of @p args into @p out. */
bool
takeOption(std::vector<std::string> &args, const std::string &flag,
           std::string &out)
{
    for (std::size_t i = 0; i + 1 < args.size(); ++i) {
        if (args[i] == flag) {
            out = args[i + 1];
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                       args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
            return true;
        }
    }
    return false;
}

std::uint64_t
toU64(const std::string &s, std::uint64_t fallback)
{
    if (s.empty())
        return fallback;
    return std::strtoull(s.c_str(), nullptr, 10);
}

int
cmdRecord(std::vector<std::string> args)
{
    std::string out_dir = "results/traces";
    std::string insts_s, chunk_s, suite_s;
    takeOption(args, "--out", out_dir);
    takeOption(args, "--insts", insts_s);
    takeOption(args, "--chunk", chunk_s);
    takeOption(args, "--suite", suite_s);

    const RunOptions ropt = RunOptions::fromEnv();
    // Default margin covers the frontend running ahead of commit, so a
    // (warmup, measure) run with the same env never hits the wrap seam.
    const std::uint64_t insts =
        toU64(insts_s, ropt.warmup + ropt.measure + (64 << 10));
    traceio::TraceWriter::Options wopt;
    wopt.chunk_insts = static_cast<std::uint32_t>(
        toU64(chunk_s, traceio::kDefaultChunkInsts));

    const std::size_t suite_size =
        suite_s.empty() ? ropt.traces
                        : static_cast<std::size_t>(toU64(suite_s, 8));
    const std::vector<WorkloadSpec> suite = serverSuite(suite_size);

    std::vector<WorkloadSpec> selected;
    if (args.empty()) {
        selected = suite;
    } else {
        for (const std::string &want : args) {
            bool found = false;
            for (const WorkloadSpec &spec : suite)
                if (spec.name == want) {
                    selected.push_back(spec);
                    found = true;
                }
            if (!found) {
                std::fprintf(stderr,
                             "btbsim-trace: unknown workload '%s' (suite of "
                             "%zu: ",
                             want.c_str(), suite.size());
                for (const WorkloadSpec &spec : suite)
                    std::fprintf(stderr, "%s ", spec.name.c_str());
                std::fprintf(stderr, ")\n");
                return 2;
            }
        }
    }

    for (const WorkloadSpec &spec : selected) {
        const std::string path = out_dir + "/" + spec.name +
                                 traceio::kTraceExt;
        std::printf("recording %-10s -> %s (%llu insts)...", spec.name.c_str(),
                    path.c_str(), static_cast<unsigned long long>(insts));
        std::fflush(stdout);
        const auto t0 = std::chrono::steady_clock::now();

        auto workload = makeWorkload(spec);
        traceio::TraceWriter writer(path, spec.name, &workload->program(),
                                    wopt);
        traceio::RecordingSource rec(*workload, writer);
        for (std::uint64_t i = 0; i < insts; ++i)
            rec.next();
        writer.finish();

        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        std::printf(" done (%.1f Mi/s)\n",
                    secs > 0 ? static_cast<double>(insts) / 1e6 / secs : 0.0);
    }
    return 0;
}

int
cmdInfo(std::vector<std::string> args)
{
    std::string insts_s;
    takeOption(args, "--insts", insts_s);
    if (args.size() != 1)
        return usage();
    const std::string &path = args[0];

    const traceio::TraceFileInfo info = traceio::inspectTrace(path, true);
    std::printf("%s\n", path.c_str());
    std::printf("  format version    %u\n", info.header.version);
    std::printf("  stream name       %s\n", info.header.name.c_str());
    std::printf("  instructions      %llu\n",
                static_cast<unsigned long long>(info.header.inst_count));
    std::printf("  chunks            %u (target %u insts each)\n",
                info.header.chunk_count, info.header.chunk_target);
    std::printf("  file size         %.2f MiB (%.2f bytes/inst)\n",
                static_cast<double>(info.file_bytes) / (1 << 20),
                info.header.inst_count
                    ? static_cast<double>(info.file_bytes) /
                          static_cast<double>(info.header.inst_count)
                    : 0.0);
    std::printf("  program image     %s (%llu bytes, CRC %s)\n",
                info.header.hasProgram() ? "yes" : "no",
                static_cast<unsigned long long>(info.header.program_bytes),
                info.header.hasProgram()
                    ? (info.program_crc_ok ? "ok" : "MISMATCH")
                    : "-");
    std::size_t bad = 0;
    for (const traceio::ChunkInfo &c : info.chunks)
        if (!c.crc_ok)
            ++bad;
    std::printf("  chunk integrity   %zu/%zu ok\n", info.chunks.size() - bad,
                info.chunks.size());

    traceio::TraceReplaySource src(path);
    const std::uint64_t window = std::min<std::uint64_t>(
        info.header.inst_count, toU64(insts_s, 1'000'000));
    const TraceProperties p = analyzeTrace(src, window);
    std::printf("  branch mix over the first %llu instructions:\n",
                static_cast<unsigned long long>(window));
    std::printf("    branches          %llu (avg BB %.2f, taken dist %.2f)\n",
                static_cast<unsigned long long>(p.branches), p.avg_bb_size,
                p.avg_taken_distance);
    std::printf("    never-taken cond  %5.1f%%\n",
                100 * p.frac_never_taken_cond);
    std::printf("    always-taken cond %5.1f%%\n",
                100 * p.frac_always_taken_cond);
    std::printf("    mixed cond        %5.1f%%\n", 100 * p.frac_mixed_cond);
    std::printf("    calls / returns   %5.1f%% / %.1f%%\n",
                100 * p.frac_calls, 100 * p.frac_returns);
    std::printf("    uncond direct     %5.1f%%\n",
                100 * p.frac_uncond_direct);
    std::printf("    static sites      %llu (%llu taken)\n",
                static_cast<unsigned long long>(p.static_branch_sites),
                static_cast<unsigned long long>(p.static_taken_sites));
    return bad == 0 && info.program_crc_ok ? 0 : 1;
}

int
cmdConvert(std::vector<std::string> args)
{
    std::string name, max_s;
    takeOption(args, "--name", name);
    takeOption(args, "--max", max_s);
    if (args.size() != 2)
        return usage();
    const std::string &in = args[0];
    const std::string &out = args[1];
    if (name.empty()) {
        // Default stream name: input basename without extension.
        std::string base = in;
        if (const auto slash = base.find_last_of('/');
            slash != std::string::npos)
            base = base.substr(slash + 1);
        if (const auto dot = base.find('.'); dot != std::string::npos)
            base = base.substr(0, dot);
        name = base.empty() ? "champsim" : base;
    }

    const traceio::ConvertStats cs =
        traceio::convertChampSim(in, out, name, toU64(max_s, 0));
    std::printf("converted %s -> %s\n", in.c_str(), out.c_str());
    std::printf("  %llu instructions, %llu branches (%llu taken), "
                "%llu loads, %llu stores\n",
                static_cast<unsigned long long>(cs.records),
                static_cast<unsigned long long>(cs.branches),
                static_cast<unsigned long long>(cs.taken_branches),
                static_cast<unsigned long long>(cs.loads),
                static_cast<unsigned long long>(cs.stores));
    return 0;
}

int
cmdVerify(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    int rc = 0;
    for (const std::string &path : args) {
        const std::vector<std::string> problems = traceio::verifyTrace(path);
        if (problems.empty()) {
            std::printf("%s: ok\n", path.c_str());
        } else {
            rc = 1;
            for (const std::string &p : problems)
                std::printf("%s: FAIL: %s\n", path.c_str(), p.c_str());
        }
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);

    try {
        if (cmd == "record")
            return cmdRecord(std::move(args));
        if (cmd == "info")
            return cmdInfo(std::move(args));
        if (cmd == "convert")
            return cmdConvert(std::move(args));
        if (cmd == "verify")
            return cmdVerify(args);
    } catch (const traceio::TraceError &e) {
        std::fprintf(stderr, "btbsim-trace: %s\n", e.what());
        return 2;
    }
    return usage();
}
