/**
 * @file
 * btbsim-fuzz — property-based fuzzing of the BTB organizations under
 * the differential checker (src/check/).
 *
 *   btbsim-fuzz run [--seed S] [--runs N] [--insts N] [--out DIR]
 *                   [--time-budget SECONDS]
 *       Generate seeded random configuration x program cases and walk
 *       each through the checked bundle protocol. On the first failure,
 *       shrink it and write DIR/fuzz-<seed>-min.btbt (+ .json config
 *       sidecar), then exit 1. Seeds are S, S+1, ... so any failure is
 *       reproducible from its reported seed alone.
 *
 *   btbsim-fuzz shrink REPRO.btbt [--out FILE.btbt]
 *       Re-run a repro and shrink it further (idempotent on an already
 *       minimal repro). Exit 0 when the repro still fails and was
 *       (re)written, 3 when it no longer fails.
 *
 *   btbsim-fuzz replay REPRO.btbt
 *       Run a repro once and print the checker report. Exit 1 when it
 *       fails, 0 when it passes clean.
 *
 * Exit codes: 0 clean, 1 checker failure found, 2 usage or I/O error,
 * 3 repro did not reproduce.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "check/fuzz.h"

namespace {

using namespace btbsim;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: btbsim-fuzz run [--seed S] [--runs N] [--insts N]\n"
        "                       [--out DIR] [--time-budget SECONDS]\n"
        "       btbsim-fuzz shrink REPRO.btbt [--out FILE.btbt]\n"
        "       btbsim-fuzz replay REPRO.btbt\n");
    return 2;
}

bool
takeOption(std::vector<std::string> &args, const std::string &flag,
           std::string &out)
{
    for (std::size_t i = 0; i + 1 < args.size(); ++i) {
        if (args[i] == flag) {
            out = args[i + 1];
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                       args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
            return true;
        }
    }
    return false;
}

std::uint64_t
toU64(const std::string &s, std::uint64_t fallback)
{
    if (s.empty())
        return fallback;
    return std::strtoull(s.c_str(), nullptr, 10);
}

/** Shrink @p fail, report progress, and write the minimal repro. */
void
shrinkAndWrite(const check::FuzzCase &c, const check::FuzzFailure &fail,
               const std::string &out_path)
{
    std::printf("shrinking %zu instructions...\n", c.insts.size());
    check::ShrinkResult r = check::shrinkCase(c, fail);
    std::printf("shrunk to %zu instructions in %u round(s)\n",
                r.reduced.insts.size(), r.rounds);
    check::writeRepro(r.reduced, out_path);
    std::printf("repro written: %s (+ %s)\n", out_path.c_str(),
                check::reproConfigPath(out_path).c_str());
    std::printf("--- failure ---\n%s\n", r.failure.message.c_str());
}

int
cmdRun(std::vector<std::string> args)
{
    std::string opt;
    std::uint64_t seed0 = takeOption(args, "--seed", opt) ? toU64(opt, 1) : 1;
    std::uint64_t runs =
        takeOption(args, "--runs", opt) ? toU64(opt, 100) : 100;
    std::uint64_t insts =
        takeOption(args, "--insts", opt) ? toU64(opt, 20000) : 20000;
    std::string out_dir =
        takeOption(args, "--out", opt) ? opt : std::string(".");
    double budget_s = takeOption(args, "--time-budget", opt)
                          ? std::strtod(opt.c_str(), nullptr)
                          : 0.0;
    if (!args.empty())
        return usage();

    const auto start = std::chrono::steady_clock::now();
    std::uint64_t done = 0;
    for (std::uint64_t s = seed0; s < seed0 + runs; ++s, ++done) {
        if (budget_s > 0) {
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start;
            if (elapsed.count() >= budget_s) {
                std::printf("time budget reached after %llu case(s)\n",
                            static_cast<unsigned long long>(done));
                break;
            }
        }
        check::FuzzCase c = check::randomCase(s, insts);
        if (auto fail = check::runCase(c)) {
            std::printf("FAIL seed=%llu (%s) at instruction %zu\n",
                        static_cast<unsigned long long>(s),
                        c.btb.name().c_str(), fail->index);
            shrinkAndWrite(c, *fail,
                           out_dir + "/fuzz-" + std::to_string(s) +
                               "-min.btbt");
            return 1;
        }
    }
    std::printf("%llu case(s) passed clean\n",
                static_cast<unsigned long long>(done));
    return 0;
}

int
cmdShrink(std::vector<std::string> args)
{
    std::string opt;
    std::string out_path = takeOption(args, "--out", opt) ? opt : "";
    if (args.size() != 1)
        return usage();
    const std::string &in_path = args[0];
    if (out_path.empty()) {
        out_path = in_path;
        const std::string suffix = ".btbt";
        if (out_path.size() > suffix.size() &&
            out_path.compare(out_path.size() - suffix.size(), suffix.size(),
                             suffix) == 0)
            out_path.insert(out_path.size() - suffix.size(), "-min");
        else
            out_path += "-min";
    }

    check::FuzzCase c = check::loadRepro(in_path);
    auto fail = check::runCase(c);
    if (!fail) {
        std::fprintf(stderr, "%s no longer fails; nothing to shrink\n",
                     in_path.c_str());
        return 3;
    }
    shrinkAndWrite(c, *fail, out_path);
    return 0;
}

int
cmdReplay(std::vector<std::string> args)
{
    if (args.size() != 1)
        return usage();
    check::FuzzCase c = check::loadRepro(args[0]);
    std::printf("replaying %zu instructions on %s\n", c.insts.size(),
                c.btb.name().c_str());
    if (auto fail = check::runCase(c)) {
        std::printf("FAIL at instruction %zu\n--- failure ---\n%s\n",
                    fail->index, fail->message.c_str());
        return 1;
    }
    std::printf("passed clean\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (cmd == "run")
            return cmdRun(std::move(args));
        if (cmd == "shrink")
            return cmdShrink(std::move(args));
        if (cmd == "replay")
            return cmdReplay(std::move(args));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "btbsim-fuzz: %s\n", e.what());
        return 2;
    }
    return usage();
}
