/**
 * @file
 * btbsim-client — submit/status/results CLI for the btbsim-serve
 * daemon, plus batch authoring and a daemon-less reference runner.
 *
 *   btbsim-client [--socket PATH] ping
 *   btbsim-client [--socket PATH] submit <batch.json> [--out FILE] [--quiet]
 *   btbsim-client [--socket PATH] status <batch_id>
 *   btbsim-client [--socket PATH] results <batch_id> [--out FILE]
 *   btbsim-client [--socket PATH] shutdown
 *   btbsim-client make-batch [--name N] [--configs LIST] [--traces N]
 *                            [--warmup N] [--measure N] [--out FILE]
 *   btbsim-client run-local <batch.json> [--out FILE]
 *
 * `submit` streams per-point progress (one char per point, bench-style)
 * until the batch finishes, then — with --out — fetches the per-point
 * stats and writes a merged result JSON identical in schema to a bench
 * run, so `btbsim-stats diff serve.json local.json --threshold 0` can
 * gate bit-identity against `run-local` (the same batch executed
 * in-process, no daemon, no cache).
 *
 * `make-batch` composes a batch from the built-in configuration presets
 * (ideal-ibtb16, ibtb<W>, rbtb<S>, bbtb<S>, mbbtb<S>, hetero<S>) and
 * the deterministic server suite.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.h"
#include "core/btb_config.h"
#include "core/btb_registry.h"
#include "exp/experiment.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "sim/report.h"
#include "trace/suite.h"

namespace {

using namespace btbsim;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: btbsim-client [--socket PATH] <command> [args]\n"
        "commands:\n"
        "  ping                              round-trip the daemon\n"
        "  submit <batch.json> [--out FILE] [--quiet]\n"
        "  status <batch_id>\n"
        "  results <batch_id> [--out FILE]\n"
        "  shutdown                          drain the daemon and exit it\n"
        "  make-batch [--name N] [--configs LIST] [--traces N]\n"
        "             [--warmup N] [--measure N] [--out FILE]\n"
        "  run-local <batch.json> [--out FILE]  reference run, no daemon\n"
        "config tokens: ideal-ibtb16, or a registered organization\n"
        "(known orgs: %s)\n",
        BtbRegistry::instance().knownNames().c_str());
    return 2;
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot read " + path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

serve::BatchSpec
loadBatch(const std::string &path)
{
    return serve::batchFromJson(obs::parseJson(readFile(path)));
}

/** Write a merged result JSON (bench schema) for @p stats. */
bool
writeMergedJson(const std::vector<SimStats> &stats, const std::string &bench,
                const std::string &path)
{
    ResultSet rs;
    for (const SimStats &s : stats)
        rs.add(s);
    const std::filesystem::path p(path);
    std::error_code ec;
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream os(p);
    if (!os)
        return false;
    rs.writeJson(os, bench, /*baseline=*/"");
    return static_cast<bool>(os);
}

/** A configuration preset token (see file comment). Tokens resolve
 *  through the organization registry so out-of-tree registrations are
 *  addressable without touching this tool. */
CpuConfig
configFromToken(const std::string &tok)
{
    CpuConfig cfg;
    if (tok == "ideal-ibtb16") {
        cfg.btb = BtbConfig::ibtb(16);
        cfg.btb.makeIdeal();
        return cfg;
    }
    if (!BtbRegistry::instance().parseToken(tok, cfg.btb))
        throw std::runtime_error(
            "unknown config token: " + tok + " (known orgs: " +
            BtbRegistry::instance().knownNames() + ")");
    return cfg;
}

int
cmdMakeBatch(const std::vector<std::string> &args)
{
    serve::BatchSpec batch;
    batch.name = "serve-batch";
    batch.run = RunOptions::fromEnv();
    std::string configs = "ideal-ibtb16,ibtb16,rbtb4,bbtb4";
    std::string out;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const auto value = [&] {
            if (i + 1 >= args.size())
                throw std::runtime_error("missing value for " + args[i]);
            return args[++i];
        };
        if (args[i] == "--name")
            batch.name = value();
        else if (args[i] == "--configs")
            configs = value();
        else if (args[i] == "--traces")
            batch.run.traces = std::strtoull(value().c_str(), nullptr, 10);
        else if (args[i] == "--warmup")
            batch.run.warmup = std::strtoull(value().c_str(), nullptr, 10);
        else if (args[i] == "--measure")
            batch.run.measure = std::strtoull(value().c_str(), nullptr, 10);
        else if (args[i] == "--out")
            out = value();
        else
            return usage();
    }
    std::stringstream ss(configs);
    std::string tok;
    while (std::getline(ss, tok, ','))
        if (!tok.empty())
            batch.configs.push_back(configFromToken(tok));
    batch.workloads = serverSuite(batch.run.traces);

    std::ostringstream os;
    obs::JsonWriter w(os);
    serve::writeBatchJson(w, batch);
    os << "\n";
    if (out.empty()) {
        std::cout << os.str();
    } else {
        const std::filesystem::path p(out);
        std::error_code ec;
        if (p.has_parent_path())
            std::filesystem::create_directories(p.parent_path(), ec);
        std::ofstream f(p);
        f << os.str();
        if (!f)
            throw std::runtime_error("cannot write " + out);
        std::printf("wrote %s (%zu configs x %zu workloads, id %s)\n",
                    out.c_str(), batch.configs.size(),
                    batch.workloads.size(),
                    serve::batchDigest(batch).c_str());
    }
    return 0;
}

int
cmdRunLocal(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    std::string out;
    for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--out" && i + 1 < args.size())
            out = args[++i];
        else
            return usage();
    }
    const serve::BatchSpec batch = loadBatch(args[0]);
    // Hermetic reference: no run cache, no journal, no pool — the
    // plain experiment engine, for bit-identity gating against serve.
    exp::ExperimentOptions eopt;
    eopt.run = batch.run;
    const exp::ExperimentResult res = exp::runExperiment(
        batch.name, batch.configs, batch.workloads, std::move(eopt));
    if (!res.allOk()) {
        for (const exp::PointResult *p : res.failures())
            std::fprintf(stderr, "run-local: (%s, %s) failed: %s\n",
                         p->config.c_str(), p->workload.c_str(),
                         p->error.c_str());
        return 1;
    }
    std::printf("run-local: %zu points in %.2fs\n", res.summary.total,
                res.summary.wall_seconds);
    if (!out.empty()) {
        if (!writeMergedJson(res.stats(), batch.name, out))
            throw std::runtime_error("cannot write " + out);
        std::printf("wrote %s\n", out.c_str());
    }
    return 0;
}

int
cmdSubmit(serve::ServeClient &client, const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    std::string out;
    bool quiet = false;
    for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--out" && i + 1 < args.size())
            out = args[++i];
        else if (args[i] == "--quiet")
            quiet = true;
        else
            return usage();
    }
    const serve::BatchSpec batch = loadBatch(args[0]);

    std::size_t done = 0;
    const std::size_t total = batch.points();
    const serve::BatchOutcome outcome = client.submit(
        batch, [&](const obs::JsonValue &point) {
            if (quiet)
                return;
            const std::string &status = point.at("status").asString();
            char c = '.';
            if (status == "cached")
                c = 'c';
            else if (status == "failed")
                c = 'F';
            else if (status == "skipped")
                c = 's';
            std::printf("%c", c);
            if (++done % 64 == 0 || done == total)
                std::printf(" [%zu/%zu]\n", done, total);
            std::fflush(stdout);
        });
    if (!quiet && done % 64 != 0 && done != total)
        std::printf("\n");
    std::printf("batch %s%s: %zu points — %zu simulated, %zu cached "
                "(%zu resumed), %zu failed, %zu skipped, %zu retries, "
                "%.2fs on %zu shard(s)\n",
                outcome.batch_id.c_str(), outcome.dedup ? " (dedup)" : "",
                outcome.total, outcome.ok, outcome.cached, outcome.resumed,
                outcome.failed, outcome.skipped, outcome.retries,
                outcome.wall_seconds, outcome.shards);

    if (!out.empty()) {
        std::vector<serve::ResultPoint> points;
        serve::BatchOutcome end;
        if (!client.results(outcome.batch_id, &points, &end))
            throw std::runtime_error("batch finished but results not ready");
        std::vector<SimStats> stats;
        stats.reserve(points.size());
        for (const serve::ResultPoint &p : points)
            stats.push_back(p.stats);
        if (!writeMergedJson(stats, batch.name, out))
            throw std::runtime_error("cannot write " + out);
        std::printf("wrote %s (%zu runs)\n", out.c_str(), stats.size());
    }
    return outcome.failed || outcome.skipped ? 1 : 0;
}

int
cmdResults(serve::ServeClient &client, const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    std::string out;
    for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--out" && i + 1 < args.size())
            out = args[++i];
        else
            return usage();
    }
    std::vector<serve::ResultPoint> points;
    serve::BatchOutcome end;
    if (!client.results(args[0], &points, &end)) {
        std::printf("batch %s not finished yet\n", args[0].c_str());
        return 3;
    }
    std::printf("batch %s: %zu result points (%zu failed)\n",
                end.batch_id.c_str(), points.size(), end.failed);
    if (!out.empty()) {
        std::vector<SimStats> stats;
        stats.reserve(points.size());
        for (const serve::ResultPoint &p : points)
            stats.push_back(p.stats);
        if (!writeMergedJson(stats, "serve", out))
            throw std::runtime_error("cannot write " + out);
        std::printf("wrote %s\n", out.c_str());
    }
    return end.failed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket =
        env::str("BTBSIM_SERVE_SOCKET", "results/btbsim-serve.sock");
    std::vector<std::string> args;
    std::string cmd;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc && cmd.empty())
            socket = argv[++i];
        else if (cmd.empty())
            cmd = argv[i];
        else
            args.emplace_back(argv[i]);
    }
    if (cmd.empty())
        return usage();

    try {
        if (cmd == "make-batch")
            return cmdMakeBatch(args);
        if (cmd == "run-local")
            return cmdRunLocal(args);

        serve::ServeClient client(socket);
        if (cmd == "ping") {
            const int protocol = client.ping();
            std::printf("pong (protocol %d) from %s\n", protocol,
                        socket.c_str());
            return 0;
        }
        if (cmd == "submit")
            return cmdSubmit(client, args);
        if (cmd == "status") {
            if (args.empty())
                return usage();
            const serve::BatchStatus s = client.status(args[0]);
            std::printf("batch %s: %s — %zu/%zu done (%zu ok, %zu cached, "
                        "%zu failed, %zu skipped)\n",
                        s.batch_id.c_str(), s.state.c_str(), s.done,
                        s.total, s.ok, s.cached, s.failed, s.skipped);
            return 0;
        }
        if (cmd == "results")
            return cmdResults(client, args);
        if (cmd == "shutdown") {
            if (!client.shutdown())
                throw std::runtime_error("daemon did not ack shutdown");
            std::printf("daemon at %s shutting down\n", socket.c_str());
            return 0;
        }
        return usage();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "btbsim-client: %s\n", e.what());
        return 1;
    }
}
