/**
 * @file
 * Minimal dependency-free SHA-256 (FIPS 180-4), used by the experiment
 * engine to content-address run-cache entries and to integrity-check
 * stored results. Not a performance path: cache keys are a few KB of
 * canonical JSON.
 */

#ifndef BTBSIM_EXP_SHA256_H
#define BTBSIM_EXP_SHA256_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace btbsim::exp {

/** Incremental SHA-256 context. */
class Sha256
{
  public:
    Sha256() { reset(); }

    void reset();
    void update(const void *data, std::size_t len);
    void update(std::string_view s) { update(s.data(), s.size()); }

    /** Finalize and return the 32-byte digest (context then unusable
     *  until reset()). */
    std::array<std::uint8_t, 32> digest();

    /** One-shot convenience: lowercase hex digest of @p s. */
    static std::string hexDigest(std::string_view s);

  private:
    void compress(const std::uint8_t *block);

    std::uint32_t h_[8];
    std::uint64_t total_ = 0; ///< Message length in bytes.
    std::uint8_t buf_[64];
    std::size_t buf_len_ = 0;
};

} // namespace btbsim::exp

#endif // BTBSIM_EXP_SHA256_H
