/**
 * @file
 * Content-addressed, persistent store of completed run results.
 *
 * A run point is identified by the SHA-256 digest of its canonical run
 * key: the canonical JSON (exp/config_json.h) of the CpuConfig, the
 * WorkloadSpec and the result-affecting RunOptions fields, plus the
 * effective sample interval, the instruction-source kind (generated vs
 * .btbt replay) and the key/result schema versions. Anything that can
 * change the resulting SimStats is in the key; anything that cannot
 * (thread count, suite size, output knobs) deliberately is not, so
 * re-sharding a sweep never invalidates its cache.
 *
 * Entry layout under the cache directory (BTBSIM_RUN_CACHE):
 *
 *   <dir>/<digest[0:2]>/<digest>.json
 *   { "cache_schema": 2, "digest": "...", "stats_sha256": "...",
 *     "key": { ...canonical run key... }, "stats": { ...full SimStats... } }
 *
 * Writes are atomic (temp file + rename), so concurrent sweep workers
 * and parallel test jobs can share a directory. Loads verify the stored
 * stats against stats_sha256 by re-serializing; a corrupted, truncated
 * or stale-schema entry is discarded (unlinked) and reported as a miss,
 * never returned. A warm hit restores SimStats bit-identically — the
 * serialization round-trips every field, with doubles at %.17g.
 *
 * NOTE the cache cannot see simulator *code* changes. Bump
 * kRunKeySchemaVersion whenever a change alters simulation results so
 * stale entries stop matching (run_benches.sh --fresh wipes locally).
 */

#ifndef BTBSIM_EXP_RUN_CACHE_H
#define BTBSIM_EXP_RUN_CACHE_H

#include <optional>
#include <string>

#include "exp/config_json.h"
#include "sim/sim_stats.h"

namespace btbsim::exp {

/** Bump on any change that alters simulation results or the canonical
 *  key/stats serialization (see file comment).
 *  v2: SimStats gained span_profile / host_counters_available. */
constexpr int kRunKeySchemaVersion = 2;

/** Version of the on-disk cache-entry envelope. */
constexpr int kRunCacheSchemaVersion = 2;

/** Everything that identifies one run point's results. */
struct RunKey
{
    CpuConfig config;
    WorkloadSpec workload;
    RunOptions opt; ///< Only warmup/measure are hashed (see file comment).
    std::uint64_t sample_interval = 0; ///< Effective time-series interval.
    std::string source_kind = "generated"; ///< "generated" or "replay".
};

/**
 * Canonical JSON of @p key. @p key_schema defaults to the build's
 * version; it is a parameter so tests can prove a bump invalidates
 * digests.
 */
std::string canonicalRunKeyJson(const RunKey &key,
                                int key_schema = kRunKeySchemaVersion);

/** SHA-256 hex digest of canonicalRunKeyJson(key). */
std::string runKeyDigest(const RunKey &key,
                         int key_schema = kRunKeySchemaVersion);

/** Complete SimStats serialization (every field; cache fidelity). */
void writeStatsJson(obs::JsonWriter &w, const SimStats &s);
std::string statsToJson(const SimStats &s);

/** Strict inverse of writeStatsJson (throws std::runtime_error). */
SimStats statsFromJson(const obs::JsonValue &v);

/** The persistent store. An empty directory string disables it: load()
 *  always misses and store() is a no-op. */
class RunCache
{
  public:
    /**
     * Resolve the cache directory from BTBSIM_RUN_CACHE: unset/empty ->
     * @p fallback_dir (pass "" to default off), "0" -> disabled,
     * anything else is the directory itself.
     */
    static std::string dirFromEnv(const std::string &fallback_dir);

    explicit RunCache(std::string dir = {}) : dir_(std::move(dir)) {}

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** Path the entry for @p digest lives at (empty when disabled). */
    std::string entryPath(const std::string &digest) const;

    /**
     * Load the entry for @p digest. Returns the stored stats only when
     * the envelope parses, schema and digest match, and the payload
     * verifies against stats_sha256; otherwise the entry (if any) is
     * unlinked and nullopt is returned.
     */
    std::optional<SimStats> load(const std::string &digest) const;

    /**
     * Persist @p stats for @p digest atomically. @p key_json is the
     * canonical run key, embedded for inspectability/diffing.
     * @return false on I/O failure (the sweep continues uncached).
     */
    bool store(const std::string &digest, const std::string &key_json,
               const SimStats &stats) const;

  private:
    std::string dir_;
};

} // namespace btbsim::exp

#endif // BTBSIM_EXP_RUN_CACHE_H
