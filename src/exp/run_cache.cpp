#include "exp/run_cache.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/env.h"
#include "exp/sha256.h"
#include "obs/export.h"

namespace btbsim::exp {

// ---- run key -----------------------------------------------------------

std::string
canonicalRunKeyJson(const RunKey &key, int key_schema)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.kv("run_key_schema", key_schema);
    w.kv("result_schema", obs::kSchemaVersion);
    w.key("config");
    writeCpuConfigJson(w, key.config);
    w.key("workload");
    writeWorkloadSpecJson(w, key.workload);
    // Of RunOptions, only the fields that shape the simulated window are
    // hashed. threads cannot affect results (runner contract:
    // bit-identical regardless of thread count) and traces only selects
    // which points a sweep contains, not what each point computes.
    w.kv("warmup", key.opt.warmup);
    w.kv("measure", key.opt.measure);
    w.kv("sample_interval", key.sample_interval);
    w.kv("source", key.source_kind);
    w.endObject();
    return os.str();
}

std::string
runKeyDigest(const RunKey &key, int key_schema)
{
    return Sha256::hexDigest(canonicalRunKeyJson(key, key_schema));
}

// ---- SimStats serialization -------------------------------------------

void
writeStatsJson(obs::JsonWriter &w, const SimStats &s)
{
    w.beginObject();
    w.kv("workload", s.workload);
    w.kv("config", s.config);
    w.kv("instructions", s.instructions);
    w.kv("cycles", s.cycles);
    w.kv("ipc", s.ipc);
    w.kv("branch_mpki", s.branch_mpki);
    w.kv("misfetch_pki", s.misfetch_pki);
    w.kv("combined_mpki", s.combined_mpki);
    w.kv("cond_mispredict_rate", s.cond_mispredict_rate);
    w.kv("l1_btb_hitrate", s.l1_btb_hitrate);
    w.kv("btb_hitrate", s.btb_hitrate);
    w.kv("fetch_pcs_per_access", s.fetch_pcs_per_access);
    w.kv("taken_per_ki", s.taken_per_ki);
    w.kv("l1_slot_occupancy", s.l1_slot_occupancy);
    w.kv("l2_slot_occupancy", s.l2_slot_occupancy);
    w.kv("l1_redundancy", s.l1_redundancy);
    w.kv("l2_redundancy", s.l2_redundancy);
    w.kv("icache_mpki", s.icache_mpki);
    w.kv("avg_dyn_bb_size", s.avg_dyn_bb_size);
    w.kv("sample_interval", s.sample_interval);
    w.key("samples");
    w.beginArray();
    for (const obs::IntervalSample &p : s.samples) {
        w.beginObject();
        w.kv("cycle", p.cycle);
        w.kv("instructions", p.instructions);
        w.kv("ipc", p.ipc);
        w.kv("l1_btb_hitrate", p.l1_btb_hitrate);
        w.kv("btb_hitrate", p.btb_hitrate);
        w.kv("branch_mpki", p.branch_mpki);
        w.kv("misfetch_pki", p.misfetch_pki);
        w.kv("ftq_occupancy", p.ftq_occupancy);
        w.kv("icache_mpki", p.icache_mpki);
        w.endObject();
    }
    w.endArray();
    w.key("counters");
    w.beginObject();
    for (const auto &[name, v] : s.counters)
        w.kv(name, v);
    w.endObject();
    w.kv("host_seconds", s.host_seconds);
    w.kv("minst_per_host_sec", s.minst_per_host_sec);
    w.kv("source_kind", s.source_kind);
    w.kv("source_minst_per_sec", s.source_minst_per_sec);
    // The host span profile is cached too: a warm hit restores the
    // original run's profile bit-identically, keeping cold and warm
    // sweeps byte-comparable (the CI determinism gate relies on it).
    w.key("span_profile");
    obs::writeSpanProfileJson(w, s.span_profile);
    w.kv("host_counters_available", s.host_counters_available ? 1 : 0);
    w.endObject();
}

std::string
statsToJson(const SimStats &s)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    writeStatsJson(w, s);
    return os.str();
}

namespace {

std::uint64_t
u64At(const obs::JsonValue &v, std::string_view key)
{
    return static_cast<std::uint64_t>(v.at(key).asNumber());
}

} // namespace

SimStats
statsFromJson(const obs::JsonValue &v)
{
    SimStats s;
    s.workload = v.at("workload").asString();
    s.config = v.at("config").asString();
    s.instructions = u64At(v, "instructions");
    s.cycles = u64At(v, "cycles");
    s.ipc = v.at("ipc").asNumber();
    s.branch_mpki = v.at("branch_mpki").asNumber();
    s.misfetch_pki = v.at("misfetch_pki").asNumber();
    s.combined_mpki = v.at("combined_mpki").asNumber();
    s.cond_mispredict_rate = v.at("cond_mispredict_rate").asNumber();
    s.l1_btb_hitrate = v.at("l1_btb_hitrate").asNumber();
    s.btb_hitrate = v.at("btb_hitrate").asNumber();
    s.fetch_pcs_per_access = v.at("fetch_pcs_per_access").asNumber();
    s.taken_per_ki = v.at("taken_per_ki").asNumber();
    s.l1_slot_occupancy = v.at("l1_slot_occupancy").asNumber();
    s.l2_slot_occupancy = v.at("l2_slot_occupancy").asNumber();
    s.l1_redundancy = v.at("l1_redundancy").asNumber();
    s.l2_redundancy = v.at("l2_redundancy").asNumber();
    s.icache_mpki = v.at("icache_mpki").asNumber();
    s.avg_dyn_bb_size = v.at("avg_dyn_bb_size").asNumber();
    s.sample_interval = u64At(v, "sample_interval");
    for (const obs::JsonValue &pv : v.at("samples").array) {
        obs::IntervalSample p;
        p.cycle = u64At(pv, "cycle");
        p.instructions = u64At(pv, "instructions");
        p.ipc = pv.at("ipc").asNumber();
        p.l1_btb_hitrate = pv.at("l1_btb_hitrate").asNumber();
        p.btb_hitrate = pv.at("btb_hitrate").asNumber();
        p.branch_mpki = pv.at("branch_mpki").asNumber();
        p.misfetch_pki = pv.at("misfetch_pki").asNumber();
        p.ftq_occupancy = pv.at("ftq_occupancy").asNumber();
        p.icache_mpki = pv.at("icache_mpki").asNumber();
        s.samples.push_back(p);
    }
    for (const auto &[name, cv] : v.at("counters").object)
        s.counters[name] = cv.asNumber();
    s.host_seconds = v.at("host_seconds").asNumber();
    s.minst_per_host_sec = v.at("minst_per_host_sec").asNumber();
    s.source_kind = v.at("source_kind").asString();
    s.source_minst_per_sec = v.at("source_minst_per_sec").asNumber();
    for (const auto &[path, av] : v.at("span_profile").object) {
        obs::SpanAgg a;
        a.count = u64At(av, "count");
        a.wall_ns = u64At(av, "wall_ns");
        a.tsc = u64At(av, "tsc");
        a.cycles = u64At(av, "cycles");
        a.instructions = u64At(av, "instructions");
        a.branch_misses = u64At(av, "branch_misses");
        a.cache_misses = u64At(av, "cache_misses");
        a.task_clock_ns = u64At(av, "task_clock_ns");
        s.span_profile[path] = a;
    }
    s.host_counters_available =
        v.at("host_counters_available").asNumber() != 0.0;
    return s;
}

// ---- RunCache ----------------------------------------------------------

std::string
RunCache::dirFromEnv(const std::string &fallback_dir)
{
    // A checked run exists to exercise the simulation itself; serving it
    // from (or polluting) the content-addressed cache would defeat it.
    if (env::flag("BTBSIM_CHECK"))
        return {};
    if (!env::isSet("BTBSIM_RUN_CACHE"))
        return fallback_dir;
    if (env::disabled("BTBSIM_RUN_CACHE"))
        return {};
    return env::raw("BTBSIM_RUN_CACHE");
}

std::string
RunCache::entryPath(const std::string &digest) const
{
    if (dir_.empty() || digest.size() < 3)
        return {};
    return (std::filesystem::path(dir_) / digest.substr(0, 2) /
            (digest + ".json"))
        .string();
}

std::optional<SimStats>
RunCache::load(const std::string &digest) const
{
    const std::string path = entryPath(digest);
    if (path.empty())
        return std::nullopt;

    std::error_code ec;
    if (!std::filesystem::exists(path, ec))
        return std::nullopt;

    try {
        std::ifstream is(path, std::ios::binary);
        if (!is)
            return std::nullopt;
        std::ostringstream buf;
        buf << is.rdbuf();
        const obs::JsonValue root = obs::parseJson(buf.str());

        if (static_cast<int>(root.at("cache_schema").asNumber()) !=
            kRunCacheSchemaVersion)
            throw std::runtime_error("stale cache_schema");
        if (root.at("digest").asString() != digest)
            throw std::runtime_error("digest mismatch");

        SimStats s = statsFromJson(root.at("stats"));
        // Integrity: the payload must re-serialize to the hash recorded
        // at store time. Catches truncation, bit rot and any editing.
        if (Sha256::hexDigest(statsToJson(s)) !=
            root.at("stats_sha256").asString())
            throw std::runtime_error("stats_sha256 mismatch");
        return s;
    } catch (const std::exception &) {
        // Corrupt or stale entry: drop it so the point re-simulates and
        // the next store replaces it.
        std::filesystem::remove(path, ec);
        return std::nullopt;
    }
}

bool
RunCache::store(const std::string &digest, const std::string &key_json,
                const SimStats &stats) const
{
    const std::string path = entryPath(digest);
    if (path.empty())
        return false;

    const std::filesystem::path p(path);
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec)
        return false;

    const std::string stats_json = statsToJson(stats);

    // The envelope embeds two pre-rendered canonical documents, so it is
    // assembled textually rather than through JsonWriter.
    std::ostringstream entry;
    entry << "{\n  \"cache_schema\": " << kRunCacheSchemaVersion << ",\n"
          << "  \"digest\": \"" << digest << "\",\n"
          << "  \"stats_sha256\": \"" << Sha256::hexDigest(stats_json)
          << "\",\n"
          << "  \"key\": " << key_json << ",\n"
          << "  \"stats\": " << stats_json << "\n}\n";

    // Atomic publish: unique temp name (thread id salted) then rename,
    // so concurrent workers and parallel jobs never see partial entries.
    std::ostringstream tid;
    tid << std::this_thread::get_id();
    const std::filesystem::path tmp =
        p.parent_path() / (digest + ".tmp." + tid.str());
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return false;
        os << entry.str();
        if (!os.flush())
            return false;
    }
    std::filesystem::rename(tmp, p, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace btbsim::exp
