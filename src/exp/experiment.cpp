#include "exp/experiment.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "common/env.h"
#include "exp/journal.h"
#include "exp/sha256.h"
#include "obs/export.h"
#include "obs/progress.h"
#include "obs/registry.h"
#include "obs/sampler.h"
#include "obs/span.h"
#include "traceio/replay_env.h"

namespace btbsim::exp {

const char *
pointStatusName(PointStatus s)
{
    switch (s) {
      case PointStatus::kOk:
        return "ok";
      case PointStatus::kCached:
        return "cached";
      case PointStatus::kFailed:
        return "failed";
      case PointStatus::kSkipped:
        return "skipped";
    }
    return "unknown";
}

std::map<std::string, double>
ExperimentResult::counters() const
{
    obs::StatRegistry reg;
    auto scope = reg.scope("exp");
    scope.counter("points") = summary.total;
    scope.counter("ok") = summary.ok;
    scope.counter("cached") = summary.cached;
    scope.counter("failed") = summary.failed;
    scope.counter("skipped") = summary.skipped;
    scope.counter("retries") = summary.retries;
    scope.counter("resumed") = summary.resumed;
    std::map<std::string, double> out = reg.flatten();
    out["exp.cache_hit_rate"] = summary.cacheHitRate();
    out["exp.wall_seconds"] = summary.wall_seconds;
    if (!shards.empty()) {
        out["exp.shards"] = static_cast<double>(shards.size());
        double busy_min = -1.0, busy_max = 0.0, busy_sum = 0.0;
        for (std::size_t i = 0; i < shards.size(); ++i) {
            const ShardUtil &u = shards[i];
            const std::string prefix =
                "exp.shard" + std::to_string(i) + ".";
            out[prefix + "points"] = static_cast<double>(u.points);
            out[prefix + "busy_seconds"] = u.busy_seconds;
            out[prefix + "util"] =
                summary.wall_seconds > 0.0
                    ? u.busy_seconds / summary.wall_seconds
                    : 0.0;
            busy_sum += u.busy_seconds;
            busy_max = std::max(busy_max, u.busy_seconds);
            busy_min = busy_min < 0.0 ? u.busy_seconds
                                      : std::min(busy_min, u.busy_seconds);
        }
        if (summary.wall_seconds > 0.0) {
            out["exp.shard_util_min"] =
                std::max(busy_min, 0.0) / summary.wall_seconds;
            out["exp.shard_util_max"] = busy_max / summary.wall_seconds;
            out["exp.shard_util_mean"] =
                busy_sum /
                (summary.wall_seconds * static_cast<double>(shards.size()));
        }
    }
    return out;
}

std::vector<const PointResult *>
ExperimentResult::failures() const
{
    std::vector<const PointResult *> out;
    for (const PointResult &p : points)
        if (p.status == PointStatus::kFailed)
            out.push_back(&p);
    return out;
}

std::vector<SimStats>
ExperimentResult::stats() const
{
    std::vector<SimStats> out;
    out.reserve(points.size());
    for (const PointResult &p : points)
        if (p.hasStats())
            out.push_back(p.stats);
    return out;
}

ExperimentOptions
ExperimentOptions::fromEnv(const std::string &default_cache_dir)
{
    ExperimentOptions o;
    o.run = RunOptions::fromEnv();
    o.cache_dir = RunCache::dirFromEnv(default_cache_dir);
    // A cached point skips simulation, so it produces none of the
    // per-run side effects decision tracing exists for. Run uncached
    // when the tracer is on.
    if (env::flag("BTBSIM_TRACE"))
        o.cache_dir.clear();
    o.resume = env::flag("BTBSIM_RESUME");
    o.retries = static_cast<unsigned>(env::u64("BTBSIM_RETRIES", o.retries));
    o.max_failures =
        static_cast<unsigned>(env::u64("BTBSIM_MAX_FAILURES", 0));
    return o;
}

namespace {

/** Render one single-line JSON record (JsonWriter pretty-prints, so
 *  newlines are stripped; JSON strings never contain raw newlines). */
std::string
flatJsonLine(const std::function<void(obs::JsonWriter &)> &fill)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    fill(w);
    const std::string s = os.str();
    std::string flat;
    flat.reserve(s.size());
    for (char c : s)
        if (c != '\n')
            flat += c;
    return flat;
}

unsigned
resolveThreads(unsigned requested, std::size_t jobs)
{
    unsigned n = requested;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 4;
    }
    return std::min<unsigned>(n, static_cast<unsigned>(std::max<std::size_t>(
                                     jobs, 1)));
}

} // namespace

Experiment::Experiment(std::string name, std::vector<CpuConfig> configs,
                       std::vector<WorkloadSpec> workloads,
                       ExperimentOptions opt)
    : name_(std::move(name)), configs_(std::move(configs)),
      workloads_(std::move(workloads)), opt_(std::move(opt))
{
    if (!opt_.simulate)
        opt_.simulate = [](const CpuConfig &c, const WorkloadSpec &w,
                           const RunOptions &o) { return runOne(c, w, o); };
}

ExperimentResult
Experiment::run()
{
    const auto t0 = std::chrono::steady_clock::now();
    obs::ObsSpan sweep_span("sweep");

    ExperimentResult result;
    result.name = name_;
    result.points.resize(configs_.size() * workloads_.size());

    // Pre-compute every point's identity. The effective sample interval
    // and per-workload source kind are part of the key: both change the
    // resulting SimStats.
    const std::uint64_t sample_interval = obs::Sampler::intervalFromEnv();
    const std::string replay_dir = traceio::replayDirFromEnv();
    std::vector<std::string> key_jsons(result.points.size());
    for (std::size_t c = 0; c < configs_.size(); ++c) {
        for (std::size_t w = 0; w < workloads_.size(); ++w) {
            const std::size_t i = c * workloads_.size() + w;
            PointResult &p = result.points[i];
            p.config_index = c;
            p.workload_index = w;
            p.config = configs_[c].btb.name();
            p.workload = workloads_[w].name;

            RunKey key;
            key.config = configs_[c];
            key.workload = workloads_[w];
            key.opt = opt_.run;
            key.sample_interval = sample_interval;
            std::error_code ec;
            const std::string rp =
                traceio::replayPath(replay_dir, workloads_[w].name);
            key.source_kind = (!rp.empty() &&
                               std::filesystem::exists(rp, ec))
                                  ? "replay"
                                  : "generated";
            key_jsons[i] = canonicalRunKeyJson(key);
            p.digest = Sha256::hexDigest(key_jsons[i]);
        }
    }

    const RunCache cache(opt_.cache_dir);

    std::string journal_path = opt_.journal_path;
    if (journal_path.empty() && cache.enabled())
        journal_path = (std::filesystem::path(cache.dir()) / "journal" /
                        (obs::slugify(name_) + ".jsonl"))
                           .string();
    Journal journal(journal_path, opt_.resume);

    // Worker-slot count: the executor's width when a pool is attached
    // (a persistent pool ignores the per-sweep thread request), plain
    // spawned threads otherwise. Per-slot utilization (points finished
    // + host time spent) is reported as ExperimentResult::shards.
    const unsigned n_threads =
        opt_.executor
            ? opt_.executor->width(
                  resolveThreads(opt_.run.threads, result.points.size()))
            : resolveThreads(opt_.run.threads, result.points.size());
    result.shards.assign(std::max<unsigned>(n_threads, 1), ShardUtil{});

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> failures{0};
    std::atomic<std::size_t> retries{0};
    std::atomic<std::size_t> resumed{0};
    std::mutex point_mu; // Serializes the on_point callback.

    // Live JSONL progress stream (BTBSIM_PROGRESS_FD / _FILE): one
    // sweep_start record, one per finished point, one sweep_end.
    const std::unique_ptr<obs::ProgressStream> progress =
        obs::ProgressStream::openFromEnv();
    std::mutex progress_mu; // Guards the done/status tallies below.
    struct
    {
        std::size_t done = 0, ok = 0, cached = 0, failed = 0, skipped = 0;
    } tally;
    if (progress) {
        progress->emitLine(flatJsonLine([&](obs::JsonWriter &w) {
            w.beginObject();
            w.kv("type", "sweep_start");
            w.kv("sweep", name_);
            w.kv("total", static_cast<std::uint64_t>(result.points.size()));
            w.kv("cache", cache.enabled() ? cache.dir() : "");
            w.kv("threads", n_threads);
            w.endObject();
        }));
    }

    auto finishPoint = [&](PointResult &p) {
        journal.append({p.digest, pointStatusName(p.status), p.config,
                        p.workload, p.attempts, p.error});
        if (progress) {
            std::lock_guard<std::mutex> lk(progress_mu);
            ++tally.done;
            switch (p.status) {
              case PointStatus::kOk:
                ++tally.ok;
                break;
              case PointStatus::kCached:
                ++tally.cached;
                break;
              case PointStatus::kFailed:
                ++tally.failed;
                break;
              case PointStatus::kSkipped:
                ++tally.skipped;
                break;
            }
            const double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            // Linear extrapolation over finished points; -1 until the
            // first one lands (no basis for an estimate yet).
            const std::size_t left = result.points.size() - tally.done;
            const double eta =
                tally.done > 0
                    ? elapsed / static_cast<double>(tally.done) *
                          static_cast<double>(left)
                    : -1.0;
            progress->emitLine(flatJsonLine([&](obs::JsonWriter &w) {
                w.beginObject();
                w.kv("type", "point");
                w.kv("sweep", name_);
                w.kv("done", static_cast<std::uint64_t>(tally.done));
                w.kv("total",
                     static_cast<std::uint64_t>(result.points.size()));
                w.kv("ok", static_cast<std::uint64_t>(tally.ok));
                w.kv("cached", static_cast<std::uint64_t>(tally.cached));
                w.kv("failed", static_cast<std::uint64_t>(tally.failed));
                w.kv("skipped", static_cast<std::uint64_t>(tally.skipped));
                w.kv("elapsed_seconds", elapsed);
                w.kv("eta_seconds", eta);
                w.kv("config", p.config);
                w.kv("workload", p.workload);
                w.kv("status", pointStatusName(p.status));
                w.kv("span",
                     obs::SpanCollector::instance().currentPath());
                w.endObject();
            }));
        }
        if (opt_.on_point) {
            std::lock_guard<std::mutex> lk(point_mu);
            opt_.on_point(p);
        }
    };

    auto worker = [&](unsigned slot) {
        ShardUtil &util = result.shards[slot % result.shards.size()];
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= result.points.size())
                return;
            const auto point_t0 = std::chrono::steady_clock::now();
            PointResult &p = result.points[i];
            obs::ObsSpan point_span("point");
            auto account = [&] {
                ++util.points;
                util.busy_seconds +=
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - point_t0)
                        .count();
            };

            // Circuit breaker: once the failure budget is spent, stop
            // burning host time and report the rest as skipped.
            if (opt_.max_failures != 0 &&
                failures.load() >= opt_.max_failures) {
                p.status = PointStatus::kSkipped;
                finishPoint(p);
                account();
                continue;
            }

            if (cache.enabled()) {
                obs::ObsSpan probe_span("cache_probe");
                if (auto hit = cache.load(p.digest)) {
                    p.status = PointStatus::kCached;
                    p.stats = std::move(*hit);
                    if (opt_.resume && journal.completedBefore(p.digest))
                        resumed.fetch_add(1);
                    finishPoint(p);
                    account();
                    continue;
                }
            }

            const CpuConfig &cfg = configs_[p.config_index];
            const WorkloadSpec &spec = workloads_[p.workload_index];
            const unsigned max_attempts = 1 + opt_.retries;
            for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
                p.attempts = attempt;
                try {
                    obs::ObsSpan exec_span("execute");
                    p.stats = opt_.simulate(cfg, spec, opt_.run);
                    p.status = PointStatus::kOk;
                    p.error.clear();
                    break;
                } catch (const std::exception &e) {
                    p.error = e.what();
                } catch (...) {
                    p.error = "non-standard exception";
                }
                p.status = PointStatus::kFailed;
                if (attempt < max_attempts) {
                    retries.fetch_add(1);
                    // Bounded exponential backoff, capped at 1s.
                    const unsigned ms = std::min<unsigned>(
                        opt_.backoff_ms << (attempt - 1), 1000);
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(ms));
                }
            }

            if (p.status == PointStatus::kOk) {
                if (cache.enabled()) {
                    obs::ObsSpan store_span("cache_store");
                    cache.store(p.digest, key_jsons[i], p.stats);
                }
            } else {
                failures.fetch_add(1);
            }
            finishPoint(p);
            account();
        }
    };

    if (opt_.executor) {
        opt_.executor->run(worker);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n_threads);
        for (unsigned t = 0; t < n_threads; ++t)
            pool.emplace_back(worker, t);
        for (auto &t : pool)
            t.join();
    }

    ExperimentSummary &s = result.summary;
    s.total = result.points.size();
    for (const PointResult &p : result.points) {
        switch (p.status) {
          case PointStatus::kOk:
            ++s.ok;
            break;
          case PointStatus::kCached:
            ++s.cached;
            break;
          case PointStatus::kFailed:
            ++s.failed;
            break;
          case PointStatus::kSkipped:
            ++s.skipped;
            break;
        }
    }
    s.retries = retries.load();
    s.resumed = resumed.load();
    s.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

    if (progress) {
        progress->emitLine(flatJsonLine([&](obs::JsonWriter &w) {
            w.beginObject();
            w.kv("type", "sweep_end");
            w.kv("sweep", name_);
            w.kv("total", static_cast<std::uint64_t>(s.total));
            w.kv("ok", static_cast<std::uint64_t>(s.ok));
            w.kv("cached", static_cast<std::uint64_t>(s.cached));
            w.kv("failed", static_cast<std::uint64_t>(s.failed));
            w.kv("skipped", static_cast<std::uint64_t>(s.skipped));
            w.kv("retries", static_cast<std::uint64_t>(s.retries));
            w.kv("wall_seconds", s.wall_seconds);
            w.endObject();
        }));
    }
    return result;
}

ExperimentResult
runExperiment(std::string name, std::vector<CpuConfig> configs,
              std::vector<WorkloadSpec> workloads, ExperimentOptions opt)
{
    return Experiment(std::move(name), std::move(configs),
                      std::move(workloads), std::move(opt))
        .run();
}

} // namespace btbsim::exp
