/**
 * @file
 * Canonical, schema-versioned JSON serialization of the simulator's
 * configuration types. This is the substrate of the experiment engine's
 * content-addressed run cache (exp/run_cache.h): two configurations hash
 * equal exactly when their canonical JSON is byte-identical, so the
 * writers here emit EVERY field, in declaration order, with doubles
 * printed at full round-trip precision (%.17g via obs::JsonWriter).
 *
 * The matching fromJson readers are strict: a missing key, a wrong type
 * or a mismatched "_schema" version throws std::runtime_error. Round
 * trips are exact (config_json_test proves value equality field by
 * field), which also makes exported configurations diffable.
 *
 * Bump kConfigSchemaVersion whenever a field is added, removed or
 * reinterpreted — the version is hashed into every run-cache key, so a
 * bump invalidates all cached results, never silently misreads them.
 */

#ifndef BTBSIM_EXP_CONFIG_JSON_H
#define BTBSIM_EXP_CONFIG_JSON_H

#include <string>

#include "obs/json.h"
#include "sim/config.h"
#include "sim/runner.h"
#include "trace/suite.h"

namespace btbsim::exp {

/** Version of the configuration-JSON schema (see file comment). */
constexpr int kConfigSchemaVersion = 1;

// ---- writers (canonical: full field set, declaration order) ------------

void writeBtbConfigJson(obs::JsonWriter &w, const BtbConfig &c);
void writeCpuConfigJson(obs::JsonWriter &w, const CpuConfig &c);
void writeRunOptionsJson(obs::JsonWriter &w, const RunOptions &o);
void writeWorkloadSpecJson(obs::JsonWriter &w, const WorkloadSpec &s);

// ---- strict readers (throw std::runtime_error on any mismatch) ---------

BtbConfig btbConfigFromJson(const obs::JsonValue &v);
CpuConfig cpuConfigFromJson(const obs::JsonValue &v);
RunOptions runOptionsFromJson(const obs::JsonValue &v);
WorkloadSpec workloadSpecFromJson(const obs::JsonValue &v);

// ---- canonical strings (convenience for hashing / diffing) -------------

std::string toCanonicalJson(const CpuConfig &c);
std::string toCanonicalJson(const RunOptions &o);
std::string toCanonicalJson(const WorkloadSpec &s);

/** Stable names for the BTB organization enums ("instruction", ...). */
const char *btbKindName(BtbKind k);
const char *pullPolicyName(PullPolicy p);
BtbKind btbKindFromName(const std::string &name);
PullPolicy pullPolicyFromName(const std::string &name);

} // namespace btbsim::exp

#endif // BTBSIM_EXP_CONFIG_JSON_H
