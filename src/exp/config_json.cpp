#include "exp/config_json.h"

#include <sstream>
#include <stdexcept>

namespace btbsim::exp {

namespace {

// ---- strict read helpers ----------------------------------------------

std::uint64_t
u64At(const obs::JsonValue &v, std::string_view key)
{
    const double d = v.at(key).asNumber();
    if (d < 0)
        throw std::runtime_error("negative value for \"" + std::string(key) +
                                 "\"");
    return static_cast<std::uint64_t>(d);
}

unsigned
u32At(const obs::JsonValue &v, std::string_view key)
{
    return static_cast<unsigned>(u64At(v, key));
}

double
numAt(const obs::JsonValue &v, std::string_view key)
{
    return v.at(key).asNumber();
}

bool
boolAt(const obs::JsonValue &v, std::string_view key)
{
    const obs::JsonValue &b = v.at(key);
    if (b.type != obs::JsonValue::Type::kBool)
        throw std::runtime_error("expected bool for \"" + std::string(key) +
                                 "\"");
    return b.boolean;
}

void
checkSchema(const obs::JsonValue &v, const char *what)
{
    const int got = static_cast<int>(v.at("_schema").asNumber());
    if (got != kConfigSchemaVersion)
        throw std::runtime_error(
            std::string(what) + ": config schema version " +
            std::to_string(got) + " (this build reads " +
            std::to_string(kConfigSchemaVersion) + ")");
}

// ---- nested config writers/readers ------------------------------------

void
writeLevelGeom(obs::JsonWriter &w, const BtbLevelGeom &g)
{
    w.beginObject();
    w.kv("sets", g.sets);
    w.kv("ways", g.ways);
    w.endObject();
}

BtbLevelGeom
levelGeomFromJson(const obs::JsonValue &v)
{
    BtbLevelGeom g;
    g.sets = u32At(v, "sets");
    g.ways = u32At(v, "ways");
    return g;
}

void
writeCacheConfig(obs::JsonWriter &w, const CacheConfig &c)
{
    w.beginObject();
    w.kv("name", c.name);
    w.kv("sets", c.sets);
    w.kv("ways", c.ways);
    w.kv("latency", c.latency);
    w.kv("mshrs", c.mshrs);
    w.kv("next_line_prefetch", c.next_line_prefetch);
    w.endObject();
}

CacheConfig
cacheConfigFromJson(const obs::JsonValue &v)
{
    CacheConfig c;
    c.name = v.at("name").asString();
    c.sets = u32At(v, "sets");
    c.ways = u32At(v, "ways");
    c.latency = u32At(v, "latency");
    c.mshrs = u32At(v, "mshrs");
    c.next_line_prefetch = boolAt(v, "next_line_prefetch");
    return c;
}

void
writeBPredConfig(obs::JsonWriter &w, const BPredConfig &c)
{
    w.beginObject();
    w.key("perceptron");
    w.beginObject();
    w.kv("num_tables", c.perceptron.num_tables);
    w.kv("entries_per_table", c.perceptron.entries_per_table);
    w.kv("max_history", c.perceptron.max_history);
    w.endObject();
    w.kv("ras_entries", c.ras_entries);
    w.kv("indirect_entries", c.indirect_entries);
    w.endObject();
}

BPredConfig
bpredConfigFromJson(const obs::JsonValue &v)
{
    BPredConfig c;
    const obs::JsonValue &p = v.at("perceptron");
    c.perceptron.num_tables = u32At(p, "num_tables");
    c.perceptron.entries_per_table = u32At(p, "entries_per_table");
    c.perceptron.max_history = u32At(p, "max_history");
    c.ras_entries = u32At(v, "ras_entries");
    c.indirect_entries = u32At(v, "indirect_entries");
    return c;
}

void
writeMemConfig(obs::JsonWriter &w, const MemConfig &c)
{
    w.beginObject();
    w.key("l1i");
    writeCacheConfig(w, c.l1i);
    w.key("l1d");
    writeCacheConfig(w, c.l1d);
    w.key("l2");
    writeCacheConfig(w, c.l2);
    w.key("llc");
    writeCacheConfig(w, c.llc);
    w.kv("dram_latency", c.dram_latency);
    w.kv("icache_interleaves", c.icache_interleaves);
    w.endObject();
}

MemConfig
memConfigFromJson(const obs::JsonValue &v)
{
    MemConfig c;
    c.l1i = cacheConfigFromJson(v.at("l1i"));
    c.l1d = cacheConfigFromJson(v.at("l1d"));
    c.l2 = cacheConfigFromJson(v.at("l2"));
    c.llc = cacheConfigFromJson(v.at("llc"));
    c.dram_latency = u32At(v, "dram_latency");
    c.icache_interleaves = u32At(v, "icache_interleaves");
    return c;
}

void
writeBackendConfig(obs::JsonWriter &w, const BackendConfig &c)
{
    w.beginObject();
    w.kv("rob_size", c.rob_size);
    w.kv("iq_size", c.iq_size);
    w.kv("lq_size", c.lq_size);
    w.kv("sq_size", c.sq_size);
    w.kv("alloc_width", c.alloc_width);
    w.kv("commit_width", c.commit_width);
    w.kv("issue_width", c.issue_width);
    w.kv("misc_ports", c.misc_ports);
    w.kv("load_ports", c.load_ports);
    w.kv("store_ports", c.store_ports);
    w.kv("ideal", c.ideal);
    w.endObject();
}

BackendConfig
backendConfigFromJson(const obs::JsonValue &v)
{
    BackendConfig c;
    c.rob_size = u32At(v, "rob_size");
    c.iq_size = u32At(v, "iq_size");
    c.lq_size = u32At(v, "lq_size");
    c.sq_size = u32At(v, "sq_size");
    c.alloc_width = u32At(v, "alloc_width");
    c.commit_width = u32At(v, "commit_width");
    c.issue_width = u32At(v, "issue_width");
    c.misc_ports = u32At(v, "misc_ports");
    c.load_ports = u32At(v, "load_ports");
    c.store_ports = u32At(v, "store_ports");
    c.ideal = boolAt(v, "ideal");
    return c;
}

void
writeGenParams(obs::JsonWriter &w, const GenParams &p)
{
    w.beginObject();
    w.kv("seed", p.seed);
    w.kv("target_static_insts", p.target_static_insts);
    w.kv("num_handlers", p.num_handlers);
    w.kv("mean_block_len", p.mean_block_len);
    w.kv("w_check", p.w_check);
    w.kv("w_always_if", p.w_always_if);
    w.kv("w_mixed_if", p.w_mixed_if);
    w.kv("w_loop", p.w_loop);
    w.kv("w_call", p.w_call);
    w.kv("w_icall", p.w_icall);
    w.kv("w_switch", p.w_switch);
    w.kv("w_jump", p.w_jump);
    w.kv("monomorphic_frac", p.monomorphic_frac);
    w.kv("pattern_frac", p.pattern_frac);
    w.kv("min_trips", p.min_trips);
    w.kv("max_trips", p.max_trips);
    w.kv("fixed_trip_frac", p.fixed_trip_frac);
    w.kv("data_footprint", p.data_footprint);
    w.kv("frac_load", p.frac_load);
    w.kv("frac_store", p.frac_store);
    w.kv("frac_stream_stack", p.frac_stream_stack);
    w.kv("frac_stream_stride", p.frac_stream_stride);
    w.kv("dep_locality", p.dep_locality);
    w.endObject();
}

GenParams
genParamsFromJson(const obs::JsonValue &v)
{
    GenParams p;
    p.seed = u64At(v, "seed");
    p.target_static_insts = u32At(v, "target_static_insts");
    p.num_handlers = u32At(v, "num_handlers");
    p.mean_block_len = numAt(v, "mean_block_len");
    p.w_check = numAt(v, "w_check");
    p.w_always_if = numAt(v, "w_always_if");
    p.w_mixed_if = numAt(v, "w_mixed_if");
    p.w_loop = numAt(v, "w_loop");
    p.w_call = numAt(v, "w_call");
    p.w_icall = numAt(v, "w_icall");
    p.w_switch = numAt(v, "w_switch");
    p.w_jump = numAt(v, "w_jump");
    p.monomorphic_frac = numAt(v, "monomorphic_frac");
    p.pattern_frac = numAt(v, "pattern_frac");
    p.min_trips = u32At(v, "min_trips");
    p.max_trips = u32At(v, "max_trips");
    p.fixed_trip_frac = numAt(v, "fixed_trip_frac");
    p.data_footprint = u64At(v, "data_footprint");
    p.frac_load = numAt(v, "frac_load");
    p.frac_store = numAt(v, "frac_store");
    p.frac_stream_stack = numAt(v, "frac_stream_stack");
    p.frac_stream_stride = numAt(v, "frac_stream_stride");
    p.dep_locality = numAt(v, "dep_locality");
    return p;
}

} // namespace

// ---- enum names --------------------------------------------------------

const char *
btbKindName(BtbKind k)
{
    switch (k) {
      case BtbKind::kInstruction:
        return "instruction";
      case BtbKind::kRegion:
        return "region";
      case BtbKind::kBlock:
        return "block";
      case BtbKind::kMultiBlock:
        return "multiblock";
      case BtbKind::kHetero:
        return "hetero";
    }
    return "unknown";
}

BtbKind
btbKindFromName(const std::string &name)
{
    for (BtbKind k :
         {BtbKind::kInstruction, BtbKind::kRegion, BtbKind::kBlock,
          BtbKind::kMultiBlock, BtbKind::kHetero})
        if (name == btbKindName(k))
            return k;
    throw std::runtime_error("unknown BtbKind \"" + name + "\"");
}

const char *
pullPolicyName(PullPolicy p)
{
    switch (p) {
      case PullPolicy::kNone:
        return "none";
      case PullPolicy::kUncondDir:
        return "uncond_dir";
      case PullPolicy::kCallDir:
        return "call_dir";
      case PullPolicy::kAllBr:
        return "all_br";
    }
    return "unknown";
}

PullPolicy
pullPolicyFromName(const std::string &name)
{
    for (PullPolicy p : {PullPolicy::kNone, PullPolicy::kUncondDir,
                         PullPolicy::kCallDir, PullPolicy::kAllBr})
        if (name == pullPolicyName(p))
            return p;
    throw std::runtime_error("unknown PullPolicy \"" + name + "\"");
}

// ---- BtbConfig ---------------------------------------------------------

void
writeBtbConfigJson(obs::JsonWriter &w, const BtbConfig &c)
{
    w.beginObject();
    w.kv("_schema", kConfigSchemaVersion);
    w.kv("kind", btbKindName(c.kind));
    w.kv("branch_slots", c.branch_slots);
    w.kv("width", c.width);
    w.kv("skip_taken", c.skip_taken);
    w.kv("region_bytes", c.region_bytes);
    w.kv("dual_region", c.dual_region);
    w.kv("reach_instrs", c.reach_instrs);
    w.kv("split", c.split);
    w.kv("cond_ends_block", c.cond_ends_block);
    w.kv("pull", pullPolicyName(c.pull));
    w.kv("stability_threshold", c.stability_threshold);
    w.kv("allow_last_slot_pull", c.allow_last_slot_pull);
    w.key("l1");
    writeLevelGeom(w, c.l1);
    w.key("l2");
    writeLevelGeom(w, c.l2);
    w.kv("ideal", c.ideal);
    w.kv("l2_penalty", c.l2_penalty);
    w.endObject();
}

BtbConfig
btbConfigFromJson(const obs::JsonValue &v)
{
    checkSchema(v, "BtbConfig");
    BtbConfig c;
    c.kind = btbKindFromName(v.at("kind").asString());
    c.branch_slots = u32At(v, "branch_slots");
    c.width = u32At(v, "width");
    c.skip_taken = boolAt(v, "skip_taken");
    c.region_bytes = u32At(v, "region_bytes");
    c.dual_region = boolAt(v, "dual_region");
    c.reach_instrs = u32At(v, "reach_instrs");
    c.split = boolAt(v, "split");
    c.cond_ends_block = boolAt(v, "cond_ends_block");
    c.pull = pullPolicyFromName(v.at("pull").asString());
    c.stability_threshold = u32At(v, "stability_threshold");
    c.allow_last_slot_pull = boolAt(v, "allow_last_slot_pull");
    c.l1 = levelGeomFromJson(v.at("l1"));
    c.l2 = levelGeomFromJson(v.at("l2"));
    c.ideal = boolAt(v, "ideal");
    c.l2_penalty = u32At(v, "l2_penalty");
    return c;
}

// ---- CpuConfig ---------------------------------------------------------

void
writeCpuConfigJson(obs::JsonWriter &w, const CpuConfig &c)
{
    w.beginObject();
    w.kv("_schema", kConfigSchemaVersion);
    w.key("btb");
    writeBtbConfigJson(w, c.btb);
    w.key("bpred");
    writeBPredConfig(w, c.bpred);
    w.key("mem");
    writeMemConfig(w, c.mem);
    w.key("backend");
    writeBackendConfig(w, c.backend);
    w.kv("ftq_entries", c.ftq_entries);
    w.kv("decode_queue", c.decode_queue);
    w.kv("alloc_queue", c.alloc_queue);
    w.kv("fetch_width", c.fetch_width);
    w.kv("fetch_lines", c.fetch_lines);
    w.kv("decode_width", c.decode_width);
    w.kv("alloc_width", c.alloc_width);
    w.kv("btb_predecode_fill", c.btb_predecode_fill);
    w.endObject();
}

CpuConfig
cpuConfigFromJson(const obs::JsonValue &v)
{
    checkSchema(v, "CpuConfig");
    CpuConfig c;
    c.btb = btbConfigFromJson(v.at("btb"));
    c.bpred = bpredConfigFromJson(v.at("bpred"));
    c.mem = memConfigFromJson(v.at("mem"));
    c.backend = backendConfigFromJson(v.at("backend"));
    c.ftq_entries = u32At(v, "ftq_entries");
    c.decode_queue = u32At(v, "decode_queue");
    c.alloc_queue = u32At(v, "alloc_queue");
    c.fetch_width = u32At(v, "fetch_width");
    c.fetch_lines = u32At(v, "fetch_lines");
    c.decode_width = u32At(v, "decode_width");
    c.alloc_width = u32At(v, "alloc_width");
    c.btb_predecode_fill = boolAt(v, "btb_predecode_fill");
    return c;
}

// ---- RunOptions --------------------------------------------------------

void
writeRunOptionsJson(obs::JsonWriter &w, const RunOptions &o)
{
    w.beginObject();
    w.kv("_schema", kConfigSchemaVersion);
    w.kv("warmup", o.warmup);
    w.kv("measure", o.measure);
    w.kv("traces", static_cast<std::uint64_t>(o.traces));
    w.kv("threads", o.threads);
    w.endObject();
}

RunOptions
runOptionsFromJson(const obs::JsonValue &v)
{
    checkSchema(v, "RunOptions");
    RunOptions o;
    o.warmup = u64At(v, "warmup");
    o.measure = u64At(v, "measure");
    o.traces = static_cast<std::size_t>(u64At(v, "traces"));
    o.threads = u32At(v, "threads");
    return o;
}

// ---- WorkloadSpec ------------------------------------------------------

void
writeWorkloadSpecJson(obs::JsonWriter &w, const WorkloadSpec &s)
{
    w.beginObject();
    w.kv("_schema", kConfigSchemaVersion);
    w.kv("name", s.name);
    w.key("params");
    writeGenParams(w, s.params);
    w.kv("trace_seed", s.trace_seed);
    w.endObject();
}

WorkloadSpec
workloadSpecFromJson(const obs::JsonValue &v)
{
    checkSchema(v, "WorkloadSpec");
    WorkloadSpec s;
    s.name = v.at("name").asString();
    s.params = genParamsFromJson(v.at("params"));
    s.trace_seed = u64At(v, "trace_seed");
    return s;
}

// ---- canonical strings -------------------------------------------------

namespace {

template <typename T, typename WriteFn>
std::string
canonical(const T &value, WriteFn write)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    write(w, value);
    return os.str();
}

} // namespace

std::string
toCanonicalJson(const CpuConfig &c)
{
    return canonical(c, [](obs::JsonWriter &w, const CpuConfig &v) {
        writeCpuConfigJson(w, v);
    });
}

std::string
toCanonicalJson(const RunOptions &o)
{
    return canonical(o, [](obs::JsonWriter &w, const RunOptions &v) {
        writeRunOptionsJson(w, v);
    });
}

std::string
toCanonicalJson(const WorkloadSpec &s)
{
    return canonical(s, [](obs::JsonWriter &w, const WorkloadSpec &v) {
        writeWorkloadSpecJson(w, v);
    });
}

} // namespace btbsim::exp
