/**
 * @file
 * The experiment engine: a typed, fault-tolerant, cache-aware sweep of
 * configs x workloads, sitting above sim/runner.h's runOne().
 *
 * Where runMatrix() returns bare SimStats and aborts the whole sweep on
 * the first worker exception, an Experiment:
 *
 *  - identifies every point by a content hash of its canonical run key
 *    (exp/run_cache.h) and serves warm points bit-identically from the
 *    persistent run cache without simulating;
 *  - schedules cold points through a dynamic work queue, isolating a
 *    worker exception to its point, retrying it with bounded backoff,
 *    and (optionally) circuit-breaking the sweep after max_failures
 *    while reporting the untouched points as skipped;
 *  - journals per-point completion (JSONL) so an interrupted sweep can
 *    be resumed with resume=true / BTBSIM_RESUME=1 / --resume;
 *  - reports progress and cache-hit-rate through an obs::StatRegistry
 *    ("exp.*" counters) surfaced in the ExperimentResult and in the
 *    bench JSON "experiment" block.
 *
 * Per-point status: ok (simulated this run), cached (served from the
 * store), failed (exhausted retries; error recorded), skipped (not
 * attempted because the failure limit tripped).
 */

#ifndef BTBSIM_EXP_EXPERIMENT_H
#define BTBSIM_EXP_EXPERIMENT_H

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "exp/run_cache.h"
#include "sim/runner.h"

namespace btbsim::exp {

/** Outcome of one sweep point. */
enum class PointStatus : std::uint8_t {
    kOk,      ///< Simulated successfully this run.
    kCached,  ///< Served bit-identically from the run cache.
    kFailed,  ///< All attempts raised; see PointResult::error.
    kSkipped, ///< Not attempted (failure limit tripped first).
};

const char *pointStatusName(PointStatus s);

/** One (config, workload) point of a sweep. */
struct PointResult
{
    std::size_t config_index = 0;
    std::size_t workload_index = 0;
    std::string config;   ///< BtbConfig::name() of the point's config.
    std::string workload; ///< WorkloadSpec::name.
    std::string digest;   ///< Content hash of the canonical run key.

    PointStatus status = PointStatus::kSkipped;
    unsigned attempts = 0; ///< Simulation attempts (0 for cached/skipped).
    std::string error;     ///< Last failure message (kFailed only).

    SimStats stats; ///< Valid for kOk and kCached.

    bool hasStats() const
    {
        return status == PointStatus::kOk || status == PointStatus::kCached;
    }
};

/** Per-worker-slot accounting of one sweep (a "shard" when the sweep
 *  runs on a serve::ShardPool; a plain worker thread otherwise). */
struct ShardUtil
{
    std::size_t points = 0;      ///< Points this slot finished.
    double busy_seconds = 0.0;   ///< Host time spent handling them.
};

/** Sweep-level accounting (also exported as "exp.*" counters). */
struct ExperimentSummary
{
    std::size_t total = 0;
    std::size_t ok = 0;
    std::size_t cached = 0;
    std::size_t failed = 0;
    std::size_t skipped = 0;
    std::size_t retries = 0; ///< Attempts beyond the first, summed.
    /** Cached points whose digest the resume journal already listed as
     *  complete — i.e. work a previous interrupted run contributed. */
    std::size_t resumed = 0;
    double wall_seconds = 0.0;

    double
    cacheHitRate() const
    {
        return total ? static_cast<double>(cached) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** Everything a finished (or partially failed) sweep produced. */
struct ExperimentResult
{
    std::string name;
    std::vector<PointResult> points; ///< Ordered by (config, workload).

    ExperimentSummary summary;

    /** One entry per worker slot the sweep ran on (thread or shard). */
    std::vector<ShardUtil> shards;

    /** Flattened "exp.*" metrics (points, ok, cached, failed, skipped,
     *  retries, cache_hit_rate, wall_seconds, shards and per-shard
     *  shard<i>.points / busy_seconds / util) for the JSON exporter. */
    std::map<std::string, double> counters() const;

    bool allOk() const { return summary.failed == 0 && summary.skipped == 0; }

    /** Points that failed, for error reporting. */
    std::vector<const PointResult *> failures() const;

    /**
     * The stats of every point carrying results, in sweep order
     * (failed/skipped points are absent — check allOk() first when a
     * dense matrix is required).
     */
    std::vector<SimStats> stats() const;
};

/**
 * Abstract executor a sweep's workers run on. The default (no executor)
 * spawns one thread per worker slot and joins them; a persistent
 * implementation (serve::ShardPool) reuses its threads across sweeps.
 *
 * Contract: width(requested) reports how many slots run() will use;
 * run(worker) must invoke worker(slot) exactly once per slot in
 * [0, width), concurrently, and return only when every call has.
 * Workers pull points from the sweep's internal work queue until it is
 * drained, so any width completes the sweep.
 */
class SweepExecutor
{
  public:
    virtual ~SweepExecutor() = default;
    virtual unsigned width(unsigned requested) const = 0;
    virtual void run(const std::function<void(unsigned slot)> &worker) = 0;
};

/** Scheduling and policy knobs for one Experiment. */
struct ExperimentOptions
{
    RunOptions run;

    /** External executor (non-owning; may outlive many sweeps). Null
     *  spawns opt.run.threads plain threads per run() call. */
    SweepExecutor *executor = nullptr;

    /** Run-cache directory; empty disables caching. */
    std::string cache_dir;

    /** Extra attempts after a point's first failure. */
    unsigned retries = 2;
    /** Base backoff before a retry; doubles per attempt, capped at 1s. */
    unsigned backoff_ms = 10;
    /** Stop scheduling new points after this many failures (0 = off);
     *  unscheduled points report kSkipped. */
    unsigned max_failures = 0;

    /** Resume from the journal instead of truncating it. */
    bool resume = false;
    /** Journal path; empty derives <cache_dir>/journal/<slug>.jsonl
     *  (no journal when the cache is disabled too). */
    std::string journal_path;

    /** The simulation function; tests inject failures here. Defaults to
     *  sim/runner.h runOne(). */
    std::function<SimStats(const CpuConfig &, const WorkloadSpec &,
                           const RunOptions &)>
        simulate;

    /** Per-completed-point progress hook (serialized; may be empty). */
    std::function<void(const PointResult &)> on_point;

    /**
     * Environment-driven options for sweeps run by benches and tools:
     * RunOptions::fromEnv() plus BTBSIM_RUN_CACHE (default
     * @p default_cache_dir), BTBSIM_RESUME, BTBSIM_RETRIES and
     * BTBSIM_MAX_FAILURES. BTBSIM_TRACE=1 forces the cache off: a
     * cached point skips the simulation whose decisions the tracer
     * would have recorded.
     */
    static ExperimentOptions
    fromEnv(const std::string &default_cache_dir = "results/cache");
};

/**
 * A named sweep of configs x workloads. run() never throws for a
 * point-level failure — inspect the per-point statuses instead.
 */
class Experiment
{
  public:
    Experiment(std::string name, std::vector<CpuConfig> configs,
               std::vector<WorkloadSpec> workloads, ExperimentOptions opt);

    /** Execute (or resume) the sweep. Thread count comes from
     *  opt.run.threads (0 = hardware concurrency). */
    ExperimentResult run();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<CpuConfig> configs_;
    std::vector<WorkloadSpec> workloads_;
    ExperimentOptions opt_;
};

/** One-call convenience wrapper. */
ExperimentResult runExperiment(std::string name,
                               std::vector<CpuConfig> configs,
                               std::vector<WorkloadSpec> workloads,
                               ExperimentOptions opt);

} // namespace btbsim::exp

#endif // BTBSIM_EXP_EXPERIMENT_H
