/**
 * @file
 * Durable, append-only sweep-completion journal (JSONL).
 *
 * One record per finished sweep point; the experiment engine and the
 * btbsim-serve daemon replay the journal (plus the run cache) to resume
 * an interrupted sweep without re-running completed points.
 *
 * Durability contract (the reason this is not an std::ofstream):
 *
 *  - append() issues the whole record as ONE write(2) on an O_APPEND
 *    descriptor followed by fdatasync(2), so a `kill -9` between records
 *    loses nothing and a kill *during* a record can only leave a single
 *    torn tail — never interleaved or silently dropped records.
 *  - Opening with resume=true first runs recover(): the file is scanned,
 *    and a torn trailing record (partial write from a crash) is dropped
 *    by atomically rewriting the valid prefix (temp file + fsync +
 *    rename-into-place + directory fsync). Interior lines that fail to
 *    parse are skipped on load but preserved on disk.
 *
 * On platforms without POSIX fds the journal stays disabled — the
 * durability contract cannot be met, and a sweep runs fine without one
 * (it just cannot resume).
 */

#ifndef BTBSIM_EXP_JOURNAL_H
#define BTBSIM_EXP_JOURNAL_H

#include <cstddef>
#include <mutex>
#include <set>
#include <string>

namespace btbsim::exp {

/** One journal line. `status` uses pointStatusName() vocabulary. */
struct JournalRecord
{
    std::string digest;
    std::string status; ///< "ok", "cached", "failed" or "skipped".
    std::string config;
    std::string workload;
    unsigned attempts = 0;
    std::string error; ///< Only emitted when non-empty.
};

class Journal
{
  public:
    /** An empty @p path disables the journal (all ops are no-ops).
     *  @p resume keeps the existing file (recovering a torn tail first)
     *  and loads completed digests; otherwise the file is truncated. */
    Journal(const std::string &path, bool resume);
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    bool open() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

    /** True when a previous run journalled @p digest as ok/cached. */
    bool completedBefore(const std::string &digest) const
    {
        return completed_.count(digest) > 0;
    }

    std::size_t completedCount() const { return completed_.size(); }

    /** Durably append one record (see file comment). Thread-safe. */
    void append(const JournalRecord &r);

    /** Render @p r as its single-line JSON form (no newline). */
    static std::string renderLine(const JournalRecord &r);

    /**
     * Crash recovery on @p path: scan the file, and when the tail is a
     * torn record (no final newline, or an unparseable final line),
     * rewrite the file without it — temp file, fsync, rename into
     * place, directory fsync. Returns the digests of ok/cached records.
     * A missing file returns an empty set; the scan never throws for
     * file-content problems.
     */
    static std::set<std::string> recover(const std::string &path);

  private:
    std::string path_;
    int fd_ = -1;
    std::mutex mu_;
    std::set<std::string> completed_;
};

} // namespace btbsim::exp

#endif // BTBSIM_EXP_JOURNAL_H
