#include "exp/journal.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/json.h"

#if defined(__unix__) || defined(__APPLE__)
#define BTBSIM_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <unistd.h>
#endif

namespace btbsim::exp {

namespace {

/** Parse one journal line; false when it is not a complete record. */
bool
parseRecordLine(const std::string &line, std::string *digest,
                std::string *status)
{
    try {
        const obs::JsonValue v = obs::parseJson(line);
        *digest = v.at("digest").asString();
        *status = v.at("status").asString();
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

#if BTBSIM_HAVE_POSIX_IO
/** fsync the directory holding @p path so a rename is durable. */
void
syncParentDir(const std::filesystem::path &path)
{
    const std::filesystem::path dir =
        path.has_parent_path() ? path.parent_path()
                               : std::filesystem::path(".");
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

/** Write all of @p data to @p fd, retrying on EINTR / short writes. */
bool
writeAll(int fd, const char *data, std::size_t n)
{
    while (n > 0) {
        const ::ssize_t w = ::write(fd, data, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}
#endif

} // namespace

std::string
Journal::renderLine(const JournalRecord &r)
{
    std::ostringstream line;
    obs::JsonWriter w(line);
    w.beginObject();
    w.kv("digest", r.digest);
    w.kv("status", r.status);
    w.kv("config", r.config);
    w.kv("workload", r.workload);
    w.kv("attempts", r.attempts);
    if (!r.error.empty())
        w.kv("error", r.error);
    w.endObject();
    // One record per line: the JsonWriter pretty-prints, so strip
    // newlines (JSON strings never contain raw ones).
    const std::string s = line.str();
    std::string flat;
    flat.reserve(s.size());
    for (char c : s)
        if (c != '\n')
            flat += c;
    return flat;
}

std::set<std::string>
Journal::recover(const std::string &path)
{
    std::set<std::string> completed;
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return completed;
    std::string content((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());
    is.close();

    // Split into newline-terminated lines plus a possible unterminated
    // tail. The valid prefix is everything up to (and including) the
    // last line that both ends in '\n' and parses as a record.
    std::size_t valid_end = 0; ///< Byte offset of the recoverable prefix.
    std::size_t start = 0;
    bool torn = false;
    while (start < content.size()) {
        const std::size_t nl = content.find('\n', start);
        if (nl == std::string::npos) {
            torn = true; // Unterminated tail: a record died mid-write.
            break;
        }
        const std::string line = content.substr(start, nl - start);
        std::string digest, status;
        if (!line.empty() && parseRecordLine(line, &digest, &status)) {
            if (status == "ok" || status == "cached")
                completed.insert(digest);
            valid_end = nl + 1;
        } else if (nl + 1 == content.size()) {
            torn = true; // Unparseable final line: treat as torn.
        } else {
            // Interior junk: skip on load, preserve on disk (it may be
            // someone else's diagnostic note; only the tail is ours to
            // truncate).
            valid_end = nl + 1;
        }
        start = nl + 1;
    }

    if (torn) {
        // Rewrite the valid prefix atomically next to the journal.
        const std::filesystem::path p(path);
        const std::string tmp = path + ".recover.tmp";
#if BTBSIM_HAVE_POSIX_IO
        const int fd =
            ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
            bool ok = writeAll(fd, content.data(), valid_end);
            ok = ::fsync(fd) == 0 && ok;
            ::close(fd);
            if (ok && std::rename(tmp.c_str(), path.c_str()) == 0)
                syncParentDir(p);
            else
                std::remove(tmp.c_str());
        }
#else
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        os.write(content.data(),
                 static_cast<std::streamsize>(valid_end));
        os.flush();
        if (os)
            std::rename(tmp.c_str(), path.c_str());
        else
            std::remove(tmp.c_str());
#endif
    }
    return completed;
}

Journal::Journal(const std::string &path, bool resume) : path_(path)
{
    if (path_.empty())
        return;
    const std::filesystem::path p(path_);
    std::error_code ec;
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    if (resume)
        completed_ = recover(path_);
#if BTBSIM_HAVE_POSIX_IO
    const int flags =
        O_WRONLY | O_CREAT | (resume ? O_APPEND : O_TRUNC);
    fd_ = ::open(path_.c_str(), flags, 0644);
#endif
    // Without POSIX I/O the journal stays disabled (fd_ < 0): the
    // durability contract cannot be met, and a sweep without a journal
    // still completes — it just cannot resume.
}

Journal::~Journal()
{
#if BTBSIM_HAVE_POSIX_IO
    if (fd_ >= 0)
        ::close(fd_);
#endif
}

void
Journal::append(const JournalRecord &r)
{
    if (fd_ < 0)
        return;
    const std::string line = renderLine(r) + '\n';
    std::lock_guard<std::mutex> lk(mu_);
#if BTBSIM_HAVE_POSIX_IO
    // One write(2) per record on an O_APPEND fd, then fdatasync: a
    // crash can tear at most the in-flight record, which recover()
    // drops.
    if (writeAll(fd_, line.data(), line.size()))
        ::fdatasync(fd_);
#endif
    if (r.status == "ok" || r.status == "cached")
        completed_.insert(r.digest);
}

} // namespace btbsim::exp
