#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from the bench outputs in results/.

Run after ./run_benches.sh. Extracts the normalized-IPC tables and key
series from each bench's output and records them next to the paper's
numbers with a shape verdict.
"""

import os
import re
import sys

RESULTS = os.path.join(os.path.dirname(__file__), "..", "results")


def section(name, first, last=None):
    """Lines of results/<name>.txt between markers (inclusive)."""
    path = os.path.join(RESULTS, name + ".txt")
    if not os.path.exists(path):
        return f"(missing: run ./run_benches.sh to produce {name}.txt)\n"
    with open(path) as f:
        lines = f.readlines()
    out, active = [], False
    for line in lines:
        if first in line:
            active = True
        if active:
            out.append(line)
            if last and last in line and len(out) > 1:
                break
    return "".join(out)


def geomeans(name):
    """config -> normalized geomean from a bench's whisker table."""
    text = section(name, "config", "Paper-shape")
    out = {}
    for line in text.splitlines():
        m = re.match(r"(.+?)\s+([\d.]+)\s+[\d.]+\s+[\d.]+\s+[\d.]+\s+"
                     r"([\d.]+)\s+([\d.]+)$", line)
        if m:
            out[m.group(1).strip()] = float(m.group(4))
    return out


def main():
    out = sys.stdout
    out.write(HEADER)

    out.write("\n## Workload calibration (bench_characterization)\n\n")
    out.write("```\n")
    out.write(section("bench_characterization", "workload", "mean"))
    out.write("```\n")
    out.write(CALIBRATION_NOTES)

    for name, title, paper, verdict in FIGURES:
        out.write(f"\n## {title}\n\n")
        out.write("Measured (IPC normalized to idealistic I-BTB 16, "
                  "min/q1/median/q3/max/geomean):\n\n```\n")
        out.write(section(name, "config", "Paper-shape"))
        out.write("```\n\n")
        out.write(f"Paper: {paper}\n\n")
        out.write(f"Shape verdict: {verdict}\n")

    out.write(TAIL)


HEADER = """\
# EXPERIMENTS — paper vs. measured

Reproduction record for every table and figure of Perais & Sheikh,
*Branch Target Buffer Organizations*, MICRO 2023, plus the ablations and
extensions this repo adds. Produced from the raw bench outputs in
`results/` (regenerate with `./run_benches.sh`; this file was assembled by
`tools/make_experiments.py`). Default scale: 6 synthetic server workloads,
0.5M warmup + 1M measured instructions, one thread.

The paper evaluated 147 proprietary CVP-1 server traces at 50M + 50M
instructions on a modified ChampSim; this repo substitutes a calibrated
synthetic workload suite (DESIGN.md §2) and an original simulator.
Absolute values are therefore not comparable; the reproduction target is
the *shape*: orderings, rough factors and crossover points.
"""

CALIBRATION_NOTES = """
| Property (dynamic) | Paper (CVP-1) | Measured (mean) |
|---|---|---|
| Avg basic-block size | 9.4 instructions | ~8.4 |
| Never-taken conditionals | 34.8% | ~40% |
| Always-taken conditionals | 15.0% | ~11% |
| Single-target indirects | 9.1% | ~5% |
| 90% dynamic line coverage | 138KB | ~220KB |
| 100% dynamic line coverage | 319KB | ~400KB |

Known deltas: suite branch MPKI is higher than the CVP-1 geomean (ours
~2.5-4 vs 0.84 geomean / 3.55 max) because stochastic branch behaviour
carries an irreducible noise floor, and call/return density is higher
(more, smaller functions), which fragments block-organized BTBs more than
the paper's traces do. Both deltas apply equally to every configuration.
"""

FIGURES = [
    ("bench_taken_penalty",
     "§1/§3.6.1 — 1-cycle taken-branch penalty limit study",
     "0.8% geomean IPC loss, up to 2.2%, with a 512K-entry I-BTB.",
     "REPRODUCED — small single-digit geomean loss with a long tail, even "
     "though decoupling hides most bubbles."),
    ("bench_fig4_ideal_orgs",
     "Fig. 4 — Idealistic (512K-entry) organization potential",
     "All organizations within a few % of I-BTB 16; fewer branch slots "
     "hurt R-/B-BTB (R-BTB 1BS worst); R-BTB capped below I/B even at 16 "
     "slots (region boundary); 2 slots suffice for B-BTB while R-BTB "
     "keeps improving to 4/16; I-BTB 8 ~-0.2% geomean, Skp ~+0.1%.",
     "REPRODUCED — same ordering and saturation points (B-BTB saturates "
     "at 2 slots, R-BTB needs 3-4); our Skp gain is larger (+2-3%) "
     "because our delivery path leaves more headroom than the paper's."),
    ("bench_fig5_realistic",
     "Fig. 5 — Realistic two-level hierarchies",
     "R-BTB 1BS collapses; B-BTB 1BS close behind I-BTB (1.74 vs 1.79 "
     "geomean); R-BTB peaks at 3BS; B-BTB degrades monotonically past "
     "2BS (blocks contend for entries).",
     "REPRODUCED — R-BTB 1BS worst by a wide margin, R-BTB peaks at 3BS, "
     "B-BTB best at 1-2BS and degrades with more slots."),
    ("bench_fig7_rbtb",
     "Fig. 7 — R-BTB improvements",
     "2L1 interleaving gains little (0.2-0.5% geomean); same-geometry "
     "16BS recovers near-I-BTB performance (slot pressure, not entry "
     "pressure); 128B regions need 4BS and lose at 6BS.",
     "REPRODUCED — 2L1 gains are small; nGeo-16BS recovers most of the "
     "gap; 128B ordering matches (4BS best, 6BS entry-starved)."),
    ("bench_fig8_bbtb_mbbtb",
     "Fig. 8 — B-BTB splitting and MultiBlock BTB",
     "B-BTB 1BS Splt is the best practical config (1.78 vs 1.79 for "
     "realistic I-BTB; splitting +2.6% at 1BS, unnecessary at 2-3BS); "
     "MB-BTB pull policies improve 2/3BS monotonically (UncndDir < "
     "CallDir < AllBr) yet MB-BTB 2BS AllBr still trails B-BTB 1BS Splt.",
     "PARTIALLY REPRODUCED — headline conclusion holds exactly (B-BTB "
     "1BS Splt best practical, splitting helps ~2% at 1BS and nothing at "
     "2-3BS, every MB/B config trails it); however our MB-BTB policy "
     "ordering inverts beyond UncndDir: CallDir/AllBr lose IPC because "
     "the suite's higher call fan-in multiplies per-call-site target-"
     "block duplication and our conditionals are only statistically "
     "(not architecturally) always-taken, so pulls churn more than in "
     "the CVP-1 traces."),
    ("bench_fig9_blocksize",
     "Fig. 9 — Entry reach (block size) sweep",
     "Reach barely helps B-BTB 1BS Splt or plain B-BTB; MB-BTB 2BS "
     "AllBr gains to 32 then saturates; MB-BTB 3BS AllBr gains most "
     "(+6.8% geomean at 64).",
     "REPRODUCED — reach is worthless for plain B-BTB (blocks terminate "
     "early) and most valuable for MB-BTB 3BS AllBr, which recovers "
     "double-digit geomean going 16 -> 64."),
    ("bench_fig10_fetchpcs",
     "Fig. 10 — Fetch PCs per BTB access vs geomean IPC",
     "MB-BTB strongly raises fetch PCs per access vs B-BTB at equal "
     "slots; in the contended hierarchy that does not beat B-BTB 1BS "
     "Splt — avoiding misses matters more than throughput.",
     "REPRODUCED — PCs/access rise from ~10 (B-BTB) to ~12-13 (MB-BTB "
     "16) and ~19-26 (MB-BTB 32/64) while B-BTB 1BS Splt keeps the best "
     "IPC: the paper's central message."),
    ("bench_fig11a_ideal_backend",
     "Fig. 11a — Ideal-backend limit study",
     "MB-BTB 64 AllBr beats I-BTB 16 by 13.4% geomean (6.0-15.6%), "
     "inversely correlated with dynamic basic-block size.",
     "PARTIALLY REPRODUCED — the inverse correlation with dynamic "
     "basic-block size holds (the smallest-block workload shows the "
     "highest, slightly positive, speedup) and the supply mechanism "
     "reproduces (26 fetch PCs per access vs 10), but the geomean stays "
     "just below 1.0: with our suite the ideal-backend runs remain "
     "misprediction-bound (suite MPKI ~3 vs the paper's 0.84), so "
     "MB-BTB's residual coverage cost is not amortized."),
    ("bench_fig11b_bp_sweep",
     "Fig. 11b — Branch-predictor size sweep",
     "Speedup of MB-BTB 64 AllBr over I-BTB 16 grows as the predictor "
     "shrinks (MPKI rises): pipeline refills expose the multi-block "
     "advantage.",
     "PARTIALLY REPRODUCED — MPKI rises steeply as the predictor "
     "shrinks (the sweep mechanism works); the MB/I ratio stays below "
     "1.0 for the same reason as Fig. 11a, and the *relative* penalty "
     "of MB-BTB shrinks only mildly with MPKI."),
    ("bench_ablation_mbbtb",
     "Ablation — MB-BTB stability threshold and last-slot pulling "
     "(§6.4.2, this repo's addition)",
     "The paper reports trying several thresholds and settling on 63, "
     "and a slight advantage from disallowing last-slot pulls.",
     "SUPPORTED — pulling indirects immediately (T0) costs ~2% geomean "
     "vs T63, T15 is nearly indistinguishable from T63; allowing the "
     "last slot to pull loses up to 4.6% (2BS)."),
    ("bench_ablation_blockend",
     "Ablation — block termination policy (§2.3, this repo's addition)",
     "The Yeh/Patt-style policy (blocks end at taken conditionals) "
     "trades storage for additional performance.",
     "SUPPORTED — at 1BS it recovers the same ~2% that entry splitting "
     "does (both shorten over-committed blocks); at 2BS it is neutral, "
     "mirroring the paper's finding that splitting is unnecessary there."),
    ("bench_hetero",
     "Extension — heterogeneous hierarchy (§3.6.2 future work)",
     "The paper hypothesizes that region-organized large levels waste "
     "less storage than block-organized ones.",
     "IMPLEMENTED — block L1 + region L2 with on-miss block synthesis; "
     "its L2 holds each branch exactly once (redundancy 1.0) where the "
     "homogeneous B-BTB L2 duplicates, though on this suite the synthesis "
     "misses cost more than the density gains recover."),
]

TAIL = """
## Extension — decode-based BTB prefill (§7.3)

```
""" + section("bench_btb_prefetch", "config", "Paper-shape") + """```

Boomerang-style predecode prefill on L1I misses cuts misfetch PKI for the
I-BTB (direct unconditional branches and calls get their targets before
first execution) and is deliberately unavailable to block organizations,
matching the paper's remark that decode-based prefetching cannot chain
blocks. Prefill is non-destructive (it never displaces demand-trained
slots).

## Simulator throughput (bench_simspeed)

google-benchmark microbenchmarks of program generation, trace
interpretation and full-pipeline simulation per organization; see
`results/bench_simspeed.txt`.

## Reading the deltas

Three systematic differences between this reproduction and the paper
explain every deviation above, and all three are workload-substitution
effects rather than model divergences (DESIGN.md §7):

1. higher branch MPKI floor (stochastic synthetic branches);
2. higher call/return density (smaller functions, higher fan-in), which
   taxes block-organized entries and MB-BTB target pulling hardest;
3. lower extractable ILP, which keeps even the ideal backend from
   consuming more than one basic block per cycle — the regime the
   paper's Fig. 11 limit studies rely on.
"""

if __name__ == "__main__":
    main()
